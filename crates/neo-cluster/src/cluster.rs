//! The fleet simulation: N servers, N links and a router in one event heap.
//!
//! # Anatomy
//!
//! ```text
//!                        ┌─ link 0 ─► Server 0 (Engine 0)
//!   Trace ──► Router ────┼─ link 1 ─► Server 1 (Engine 1)
//!  (arrivals) (Discipline)└─ link 2 ─► Server 2 (Engine 2)
//! ```
//!
//! All of it lives in one `ClusterState` (private), the shared state of a
//! [`neo_sim::event::EventEngine`]. The registered components are *alarm clocks* only:
//! each advertises when its entity next has work (`next_tick`) and, when dispatched,
//! calls `ClusterState::settle` — the single function that actually moves the
//! cluster. `settle(now)` repeatedly takes the earliest due instant and processes
//! every event at it in a fixed kind order (faults, then link deliveries, then engine
//! steps, then retry re-dispatch, then frontend arrivals, then central dispatch), so
//! the simulation's outputs are independent of which same-tick alarm the event engine
//! happened to dispatch first — the property the fuzzed tie-break seeds verify
//! bit-exactly.
//!
//! # Failure model
//!
//! A [`FaultPlan`] injects timed faults as first-class events: engines fail-stop
//! (losing their KV and orphaning everything they held), recover empty, links degrade
//! and restore, and per-request deadlines expire. On an engine death the router marks
//! the slot down and, when `failover` is enabled, re-dispatches the orphans to
//! surviving engines with capped exponential backoff under a per-request retry
//! budget — a retried request restarts from scratch (recompute, not migration) and
//! its partial output is discarded. Requests that exhaust the budget, miss their SLO
//! deadline, or fit no live engine are *shed* with a typed [`DropReason`]; every
//! request therefore reaches exactly one terminal state (completed or dropped), the
//! conservation contract `tests/fault_determinism.rs` proves.
//!
//! # Time semantics
//!
//! Engine iterations are atomic ([`neo_serve::Server::poll`]): an iteration starting
//! at or before the settled instant runs to completion, which may carry that engine's
//! clock past it. Requests delivered to an engine whose clock has run ahead are
//! admitted at the engine's current time — exactly the behaviour of a real engine that
//! was mid-iteration when the request landed. Cluster-level TTFT is therefore measured
//! from the *frontend* arrival (via streaming callbacks), never from the server-local
//! admission time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use neo_core::Engine;
use neo_serve::metrics::LatencySummary;
use neo_serve::{DropReason, RequestHandle, Server};
use neo_sim::event::{Component, ComponentId, EventEngine, SerialLine, TieBreak};
use neo_workload::{SloPolicy, Trace};
use serde::Serialize;

use crate::discipline::Discipline;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};

/// Configuration of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// How the router binds arrivals to engines.
    pub discipline: Discipline,
    /// `CFcfs` only: a request is dispatched once some engine's outstanding work
    /// (queue depth + in-flight on its link) is below this window. 1 would starve
    /// continuous batching; a few requests keep every engine's batch fed while the
    /// central queue stays work-conserving.
    pub dispatch_window: usize,
    /// `DFcfs` only: remap one indirection-table entry from the deepest to the
    /// shallowest engine every this many arrivals (0 = never rebalance).
    pub rebalance_every: usize,
    /// `DFcfs` only: indirection-table entries per engine (the table has
    /// `engines × this` slots, initialized round-robin).
    pub table_entries_per_engine: usize,
    /// Propagation latency of each frontend→engine link, in seconds.
    pub link_latency_s: f64,
    /// Bandwidth of each frontend→engine link, in bytes per second.
    pub link_bytes_per_s: f64,
    /// Request payload priced on the link: bytes per prompt token.
    pub bytes_per_token: f64,
    /// Same-tick dispatch-order seed for the cluster event heap — `0` is the pinned
    /// deterministic order, anything else a fuzzed permutation that must leave every
    /// output bit-identical (see [`neo_sim::event::TieBreak::from_seed`]).
    pub tie_break_seed: u64,
    /// Event budget for the whole run (livelock guard).
    pub max_events: u64,
    /// Timed faults to inject. The default (empty) plan leaves every output
    /// byte-identical to a faultless run.
    pub fault_plan: FaultPlan,
    /// Whether orphans of a dead engine are re-dispatched to survivors. With
    /// failover off, every request a failed engine held is shed on the spot.
    pub failover: bool,
    /// Re-dispatches allowed per request beyond its first dispatch; the attempt
    /// after the budget is exhausted is shed as [`DropReason::RetriesExhausted`].
    pub retry_budget: u32,
    /// Backoff before the first re-dispatch, in seconds (doubled per retry).
    pub backoff_base_s: f64,
    /// Ceiling on the exponential backoff, in seconds.
    pub backoff_cap_s: f64,
    /// Completion-deadline policy. `None` disables deadline shedding; with a policy,
    /// every request gets a `DeadlineExpire` fault at its deadline and is shed
    /// (wherever it is) if still unfinished then.
    pub slo: Option<SloPolicy>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            discipline: Discipline::RoundRobin,
            dispatch_window: 4,
            rebalance_every: 32,
            table_entries_per_engine: 4,
            // A 10 Gbit/s datacenter hop with ~200 µs of RPC latency.
            link_latency_s: 2e-4,
            link_bytes_per_s: 1.25e9,
            bytes_per_token: 4.0,
            tie_break_seed: 0,
            max_events: 5_000_000,
            fault_plan: FaultPlan::default(),
            failover: true,
            retry_budget: 3,
            backoff_base_s: 0.05,
            backoff_cap_s: 1.0,
            slo: None,
        }
    }
}

/// One shed request: when it was dropped and why ([`DropReason::label`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DropRecord {
    /// Frontend request id.
    pub id: u64,
    /// Simulated instant the request was shed.
    pub time: f64,
    /// Drop reason label (snake_case, from [`DropReason::label`]).
    pub reason: String,
}

/// One routing decision, in binding order — the pinned determinism surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RouteRecord {
    /// Frontend request id (its index in the arrival trace).
    pub id: u64,
    /// Binding time: the frontend arrival for early-binding disciplines, the central
    /// dispatch instant for `CFcfs`.
    pub time: f64,
    /// Engine the request was bound to.
    pub engine: usize,
}

/// Per-engine slice of a [`ClusterReport`].
#[derive(Debug, Clone, Serialize)]
pub struct EngineSummary {
    /// Engine name as registered with [`Cluster::new`].
    pub name: String,
    /// Requests routed to this engine.
    pub routed: usize,
    /// Requests it completed.
    pub completed: usize,
    /// Tokens it streamed.
    pub streamed_tokens: u64,
    /// Requests dropped while it held them (faults, deadlines, shedding).
    pub dropped: usize,
    /// Its engine clock when the cluster drained.
    pub makespan: f64,
    /// Fraction of its busy iterations that offloaded attention to the CPU.
    pub offload_fraction: f64,
}

/// What a cluster run did, summarised when every request drained.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Discipline label (resolvable via [`Discipline::from_label`]).
    pub discipline: String,
    /// Requests in the arrival trace.
    pub requests: usize,
    /// Requests completed across the fleet (goodput; `requests - dropped`).
    pub completed: usize,
    /// Requests shed with a typed drop reason.
    pub dropped: usize,
    /// Re-dispatches performed by the failover path (beyond first dispatches).
    pub retries: u64,
    /// Time the last engine finished.
    pub makespan: f64,
    /// Tokens streamed across the fleet.
    pub streamed_tokens: u64,
    /// Time-to-first-token measured from the *frontend* arrival.
    pub ttft: Option<LatencySummary>,
    /// Inter-token gaps, per request, across the fleet.
    pub itl: Option<LatencySummary>,
    /// `DFcfs`: indirection-table remaps performed.
    pub rebalances: usize,
    /// `CFcfs`: high-water mark of the central queue.
    pub max_central_queue: usize,
    /// Per-engine summaries, in registration order.
    pub engines: Vec<EngineSummary>,
    /// Every routing decision, in binding order (retries append new records).
    pub routes: Vec<RouteRecord>,
    /// Every shed request, in drop order.
    pub drops: Vec<DropRecord>,
}

/// One frontend request (a trace row with its global id implied by position).
#[derive(Debug, Clone, Copy)]
struct FrontendRequest {
    arrival: f64,
    prompt_len: usize,
    output_len: usize,
}

/// One engine's seat in the cluster: its server, its link, and the requests in
/// flight between router and engine.
struct Slot {
    name: String,
    server: Server,
    link: SerialLine,
    /// `(deliver_at, id)` in delivery order (monotone: the link is serial FIFO).
    inflight: VecDeque<(f64, u64)>,
    routed: usize,
    /// Prompt tokens routed here whose first token has not streamed yet — KV
    /// commitments the engine's occupancy counters cannot see yet (the `LeastKv`
    /// signal's in-flight term).
    pending_prompt_tokens: usize,
    /// Whether the engine is in service; a down slot admits nothing and has no
    /// activity until an `EngineRecover` fault.
    up: bool,
    /// Largest context (prompt + output + 1) any pool of this engine can ever hold —
    /// the admissibility bound for routing.
    capacity: usize,
}

/// Where a live request currently sits — the index the failover path uses to find
/// and detach it.
#[derive(Debug, Clone, Copy)]
enum Site {
    /// Not yet routed, or already terminal.
    Idle,
    /// On engine `e`'s frontend link.
    OnLink(usize),
    /// Admitted by engine `e`'s server under this handle.
    OnServer(usize, RequestHandle),
    /// In the `CFcfs` central queue.
    CentralQueue,
    /// Waiting out a failover backoff.
    RetryQueue,
}

/// Terminal-state ledger entry: exactly one of these outcomes per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Pending,
    Completed,
    Dropped,
}

/// One parked failover candidate: re-dispatchable from `ready_at`.
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    ready_at: f64,
    id: u64,
}

/// Router bookkeeping shared by all disciplines.
struct RouterState {
    discipline: Discipline,
    rr_next: usize,
    /// `CFcfs` central FIFO of frontend ids.
    central: VecDeque<u64>,
    max_central: usize,
    /// `DFcfs` indirection table: entry → engine.
    table: Vec<usize>,
    seq: usize,
    arrivals_since_rebalance: usize,
    rebalances: usize,
}

/// Token events observed by the per-request streaming callbacks.
#[derive(Default)]
struct TokenSink {
    /// Emission times per frontend id.
    token_times: Vec<Vec<f64>>,
    /// Frontend ids whose first token arrived since the last settle drained them.
    firsts: Vec<u64>,
    /// Frontend ids whose last token arrived since the last settle drained them.
    lasts: Vec<u64>,
}

/// Shared state of the cluster event engine. All movement happens in
/// [`ClusterState::settle`]; the registered components only decide *when* it runs.
pub(crate) struct ClusterState {
    slots: Vec<Slot>,
    requests: Vec<FrontendRequest>,
    /// Cursor into `requests` (sorted by arrival): the next frontend arrival.
    next_arrival: usize,
    router: RouterState,
    records: Vec<RouteRecord>,
    /// Engine each frontend id was bound to (`usize::MAX` until routed).
    engine_of: Vec<usize>,
    token_sink: Rc<RefCell<TokenSink>>,
    /// Fault plan (plus SLO deadline events), sorted by time; `fault_cursor` is the
    /// next unapplied event.
    fault_events: Vec<FaultEvent>,
    fault_cursor: usize,
    /// Where each frontend id currently sits.
    site: Vec<Site>,
    /// Terminal-state ledger: exactly one outcome per request.
    outcome: Vec<Outcome>,
    /// Dispatches so far per request (first dispatch counts; retries increment).
    attempts: Vec<u32>,
    /// Completion deadline per request (`f64::INFINITY` without an SLO policy).
    deadline: Vec<f64>,
    /// Orphans waiting out their failover backoff.
    retry_queue: Vec<RetryEntry>,
    /// Every shed request, in drop order.
    drops: Vec<DropRecord>,
    /// Re-dispatches performed (beyond first dispatches).
    retries: u64,
    config: ClusterConfig,
}

impl ClusterState {
    /// The earliest instant at which anything in the cluster has work: a fault, a
    /// link delivery, an engine's next activity, a retry coming off backoff, or a
    /// frontend arrival. The central queue needs no wake-up of its own — it only
    /// becomes dispatchable as a consequence of one of these, and every settle pass
    /// ends with a dispatch attempt.
    fn next_due(&self) -> Option<f64> {
        let mut due: Option<f64> = None;
        let mut fold = |t: f64| due = Some(due.map_or(t, |d: f64| d.min(t)));
        for slot in &self.slots {
            if let Some(&(deliver_at, _)) = slot.inflight.front() {
                fold(deliver_at);
            }
            if let Some(at) = slot.server.next_activity() {
                fold(at);
            }
        }
        if let Some(request) = self.requests.get(self.next_arrival) {
            fold(request.arrival);
        }
        if let Some(at) = self.fault_due() {
            fold(at);
        }
        if let Some(at) = self.retry_due() {
            fold(at);
        }
        due
    }

    /// The next fault event that would actually do something. A `DeadlineExpire` of
    /// an already-terminal request is a no-op and must not wake the cluster (it is
    /// still consumed, cursor-advancing, whenever a real event settles past it).
    fn fault_due(&self) -> Option<f64> {
        self.fault_events[self.fault_cursor..]
            .iter()
            .find(|event| {
                !(event.kind == FaultKind::DeadlineExpire
                    && self.outcome[event.request as usize] != Outcome::Pending)
            })
            .map(|event| event.at)
    }

    /// The earliest `ready_at` among parked retries that have somewhere to go. An
    /// entry with no live admissible engine stays asleep — an `EngineRecover` fault
    /// (or `finalize`) is what eventually resolves it.
    fn retry_due(&self) -> Option<f64> {
        let mut due: Option<f64> = None;
        for entry in &self.retry_queue {
            if (0..self.slots.len()).any(|e| self.eligible(entry.id, e)) {
                due = Some(due.map_or(entry.ready_at, |d: f64| d.min(entry.ready_at)));
            }
        }
        due
    }

    /// Processes every cluster event due at or before `now`, earliest instant first,
    /// and within one instant in the fixed kind order: faults → link deliveries →
    /// engine steps → retry re-dispatch → frontend arrivals → central dispatch. This
    /// global order is what makes every routing decision independent of the event
    /// heap's same-tick dispatch order: whichever alarm called `settle` first, the
    /// cluster replays identically.
    fn settle(&mut self, now: f64) {
        let mut passes: u64 = 0;
        while let Some(at) = self.next_due() {
            if at > now {
                break;
            }
            passes += 1;
            assert!(
                passes <= self.config.max_events,
                "cluster settle livelocked at t={at} ({} requests pending)",
                self.requests.len() - self.next_arrival
            );
            self.apply_faults(at);
            for e in 0..self.slots.len() {
                while let Some(&(deliver_at, id)) = self.slots[e].inflight.front() {
                    if deliver_at > at {
                        break;
                    }
                    self.slots[e].inflight.pop_front();
                    self.deliver(e, deliver_at, id);
                }
            }
            for e in 0..self.slots.len() {
                if self.slots[e].server.next_activity().is_some_and(|t| t <= at) {
                    self.slots[e].server.poll(at);
                }
            }
            self.drain_sink();
            self.process_retries(at);
            while self.requests.get(self.next_arrival).is_some_and(|r| r.arrival <= at) {
                let id = self.next_arrival as u64;
                self.next_arrival += 1;
                if self.outcome[id as usize] == Outcome::Pending {
                    self.route(at, id);
                }
            }
            self.dispatch_central(at);
        }
    }

    /// Applies every fault event due at or before `at`, in plan order.
    fn apply_faults(&mut self, at: f64) {
        while self.fault_events.get(self.fault_cursor).is_some_and(|event| event.at <= at) {
            let event = self.fault_events[self.fault_cursor];
            self.fault_cursor += 1;
            match event.kind {
                FaultKind::EngineFail => self.fail_engine(event.at, event.engine),
                FaultKind::EngineRecover => {
                    if !self.slots[event.engine].up {
                        self.slots[event.engine].server.recover();
                        self.slots[event.engine].up = true;
                    }
                }
                FaultKind::LinkDegrade => {
                    let link = &mut self.slots[event.engine].link;
                    let latency = self.config.link_latency_s + event.added_latency_s;
                    link.reconfigure(
                        latency,
                        self.config.link_bytes_per_s * event.bandwidth_factor,
                    );
                }
                FaultKind::LinkRestore => {
                    let link = &mut self.slots[event.engine].link;
                    link.reconfigure(self.config.link_latency_s, self.config.link_bytes_per_s);
                }
                FaultKind::DeadlineExpire => {
                    // Completions already streamed this instant must win the tie.
                    self.drain_sink();
                    if self.outcome[event.request as usize] == Outcome::Pending {
                        self.drop_request(event.at, event.request, DropReason::DeadlineExpired);
                    }
                }
            }
        }
    }

    /// Fail-stops engine `e` at `at`: its KV is lost, the slot goes down, and every
    /// request it held (on the link or admitted) is orphaned in id order.
    fn fail_engine(&mut self, at: f64, engine: usize) {
        if !self.slots[engine].up {
            return;
        }
        // Tokens streamed before the fault landed are real; account them first.
        self.drain_sink();
        let _ = self.slots[engine].server.fail();
        self.slots[engine].up = false;
        self.slots[engine].inflight.clear();
        self.slots[engine].pending_prompt_tokens = 0;
        let victims: Vec<u64> = self
            .site
            .iter()
            .enumerate()
            .filter(
                |(_, site)| matches!(site, Site::OnLink(e) | Site::OnServer(e, _) if *e == engine),
            )
            .map(|(id, _)| id as u64)
            .collect();
        for id in victims {
            self.site[id as usize] = Site::Idle;
            self.token_sink.borrow_mut().token_times[id as usize].clear();
            self.orphan(at, id);
        }
    }

    /// Decides the fate of a detached live request (its `site` must already be
    /// `Idle` and its slot accounting settled): park it for a retry, or shed it.
    fn orphan(&mut self, at: f64, id: u64) {
        let idx = id as usize;
        self.token_sink.borrow_mut().token_times[idx].clear();
        if !self.config.failover {
            self.drop_request(at, id, DropReason::EngineFailed);
            return;
        }
        let attempts = self.attempts[idx];
        if attempts > self.config.retry_budget {
            self.drop_request(at, id, DropReason::RetriesExhausted);
            return;
        }
        let exponent = attempts.saturating_sub(1).min(30);
        let delay =
            (self.config.backoff_base_s * (1u64 << exponent) as f64).min(self.config.backoff_cap_s);
        let ready_at = at + delay;
        if ready_at >= self.deadline[idx] {
            self.drop_request(at, id, DropReason::DeadlineExpired);
            return;
        }
        self.site[idx] = Site::RetryQueue;
        self.retry_queue.push(RetryEntry { ready_at, id });
    }

    /// Sheds request `id`: detaches it from wherever it sits, marks it terminal, and
    /// records the typed reason.
    fn drop_request(&mut self, at: f64, id: u64, reason: DropReason) {
        let idx = id as usize;
        match self.site[idx] {
            Site::OnLink(e) => {
                self.slots[e].inflight.retain(|&(_, x)| x != id);
                let prompt = self.requests[idx].prompt_len;
                self.slots[e].pending_prompt_tokens =
                    self.slots[e].pending_prompt_tokens.saturating_sub(prompt);
            }
            Site::OnServer(e, handle) => {
                if self.token_sink.borrow().token_times[idx].is_empty() {
                    let prompt = self.requests[idx].prompt_len;
                    self.slots[e].pending_prompt_tokens =
                        self.slots[e].pending_prompt_tokens.saturating_sub(prompt);
                }
                self.slots[e].server.drop_now(handle, reason);
            }
            Site::CentralQueue => self.router.central.retain(|&x| x != id),
            Site::RetryQueue => self.retry_queue.retain(|entry| entry.id != id),
            Site::Idle => {}
        }
        self.token_sink.borrow_mut().token_times[idx].clear();
        self.site[idx] = Site::Idle;
        self.outcome[idx] = Outcome::Dropped;
        self.drops.push(DropRecord { id, time: at, reason: reason.label().to_string() });
    }

    /// Re-dispatches parked orphans whose backoff elapsed, earliest (`ready_at`,
    /// `id`) first, each to the least-outstanding live admissible engine. An entry
    /// with no eligible engine while *some* engine is up can never be served (engines
    /// don't gain capacity) and is shed; with the whole fleet down it stays parked.
    fn process_retries(&mut self, at: f64) {
        loop {
            let mut pick: Option<(usize, f64, u64)> = None;
            for (slot, entry) in self.retry_queue.iter().enumerate() {
                if entry.ready_at <= at
                    && pick.map_or(true, |(_, t, i)| (entry.ready_at, entry.id) < (t, i))
                {
                    pick = Some((slot, entry.ready_at, entry.id));
                }
            }
            let Some((slot, _, id)) = pick else { break };
            let eligible: Vec<usize> =
                (0..self.slots.len()).filter(|&e| self.eligible(id, e)).collect();
            if eligible.is_empty() {
                if self.slots.iter().any(|s| s.up) {
                    self.retry_queue.remove(slot);
                    self.site[id as usize] = Site::Idle;
                    self.drop_request(at, id, DropReason::NoAdmissibleEngine);
                    continue;
                }
                break;
            }
            self.retry_queue.remove(slot);
            self.site[id as usize] = Site::Idle;
            // `eligible` was checked non-empty above, so min_by_key yields a value;
            // the unreachable fallback keeps this path panic-free.
            let best = eligible
                .iter()
                .copied()
                .min_by_key(|&e| (self.outstanding(e), e))
                .unwrap_or(eligible[0]);
            if self.attempts[id as usize] >= 1 {
                self.retries += 1;
            }
            self.bind(at, id, best);
        }
    }

    /// Whether engine `e` is live and could ever serve request `id` (its full
    /// context fits the engine's largest pool).
    fn eligible(&self, id: u64, engine: usize) -> bool {
        self.slots[engine].up && self.admissible(id, engine)
    }

    /// Whether request `id`'s full context fits engine `e`'s largest pool,
    /// regardless of the engine being up.
    fn admissible(&self, id: u64, engine: usize) -> bool {
        let request = self.requests[id as usize];
        request.prompt_len + request.output_len < self.slots[engine].capacity
    }

    /// Terminal sweep after the event core drains: anything still pending can only
    /// be parked against a fleet that never recovered — shed it so every request
    /// ends in exactly one terminal state.
    fn finalize(&mut self) {
        let at = self.slots.iter().map(|slot| slot.server.now()).fold(0.0, f64::max);
        for id in 0..self.requests.len() {
            if self.outcome[id] == Outcome::Pending {
                self.drop_request(at, id as u64, DropReason::EngineFailed);
            }
        }
    }

    /// Hands a delivered request to its engine's server, wiring the streaming
    /// callback that timestamps every token against the frontend clock. A rejected
    /// or undeliverable submission re-enters the failover path.
    fn deliver(&mut self, engine: usize, at: f64, id: u64) {
        let idx = id as usize;
        if self.outcome[idx] != Outcome::Pending {
            return;
        }
        let request = self.requests[idx];
        if !self.slots[engine].up {
            // The wire outlived the engine: treat the delivery as lost.
            self.slots[engine].pending_prompt_tokens =
                self.slots[engine].pending_prompt_tokens.saturating_sub(request.prompt_len);
            self.site[idx] = Site::Idle;
            self.orphan(at, id);
            return;
        }
        let sink = Rc::clone(&self.token_sink);
        let submitted = self.slots[engine].server.submit_with_callback(
            at,
            request.prompt_len,
            request.output_len,
            move |event| {
                let mut sink = sink.borrow_mut();
                if event.index == 0 {
                    sink.firsts.push(id);
                }
                if event.is_last {
                    sink.lasts.push(id);
                }
                sink.token_times[id as usize].push(event.time);
            },
        );
        match submitted {
            Ok(handle) => self.site[idx] = Site::OnServer(engine, handle),
            Err(_) => {
                self.slots[engine].pending_prompt_tokens =
                    self.slots[engine].pending_prompt_tokens.saturating_sub(request.prompt_len);
                self.site[idx] = Site::Idle;
                self.orphan(at, id);
            }
        }
    }

    /// Releases the `pending_prompt_tokens` commitment of every request whose first
    /// token streamed since the last drain (its prompt is now visible in the
    /// engine's own KV occupancy counters), and marks requests whose last token
    /// streamed as completed.
    fn drain_sink(&mut self) {
        let (firsts, lasts): (Vec<u64>, Vec<u64>) = {
            let mut sink = self.token_sink.borrow_mut();
            (sink.firsts.drain(..).collect(), sink.lasts.drain(..).collect())
        };
        for id in firsts {
            let engine = self.engine_of[id as usize];
            let prompt = self.requests[id as usize].prompt_len;
            self.slots[engine].pending_prompt_tokens =
                self.slots[engine].pending_prompt_tokens.saturating_sub(prompt);
        }
        for id in lasts {
            if self.outcome[id as usize] == Outcome::Pending {
                self.outcome[id as usize] = Outcome::Completed;
                self.site[id as usize] = Site::Idle;
            }
        }
    }

    /// Routes one frontend arrival at time `at` under the configured discipline,
    /// skipping engines that are down or too small for the request. An arrival no
    /// engine could *ever* hold is shed typed; one that merely has nowhere live to
    /// go right now enters the failover path.
    fn route(&mut self, at: f64, id: u64) {
        if !(0..self.slots.len()).any(|e| self.admissible(id, e)) {
            self.drop_request(at, id, DropReason::NoAdmissibleEngine);
            return;
        }
        match self.router.discipline {
            Discipline::RoundRobin => {
                let fleet = self.slots.len();
                let start = self.router.rr_next;
                let chosen = (0..fleet)
                    .map(|k| (start + k) % fleet)
                    .enumerate()
                    .find(|&(_, e)| self.eligible(id, e));
                match chosen {
                    Some((k, engine)) => {
                        self.router.rr_next = start + k + 1;
                        self.bind(at, id, engine);
                    }
                    None => self.fallback_unroutable(at, id),
                }
            }
            Discipline::DFcfs => {
                let entry = self.router.seq % self.router.table.len();
                self.router.seq += 1;
                let engine = self.router.table[entry];
                if self.eligible(id, engine) {
                    self.bind(at, id, engine);
                } else {
                    // The table pointed somewhere dead or too small; fall back to
                    // the least-outstanding engine that can take it.
                    let best = (0..self.slots.len())
                        .filter(|&e| self.eligible(id, e))
                        .min_by_key(|&e| (self.outstanding(e), e));
                    match best {
                        Some(engine) => self.bind(at, id, engine),
                        None => self.fallback_unroutable(at, id),
                    }
                }
                self.maybe_rebalance();
            }
            Discipline::LeastKv => match self.least_kv_engine(id) {
                Some(engine) => self.bind(at, id, engine),
                None => self.fallback_unroutable(at, id),
            },
            Discipline::CFcfs => {
                self.site[id as usize] = Site::CentralQueue;
                self.router.central.push_back(id);
                self.router.max_central = self.router.max_central.max(self.router.central.len());
            }
        }
    }

    /// A request some engine could hold, but none can take right now (the admissible
    /// ones are all down): park it for a retry once the fleet heals.
    fn fallback_unroutable(&mut self, at: f64, id: u64) {
        self.orphan(at, id);
    }

    /// Outstanding work per engine as the request-count disciplines see it: the
    /// server's queue depth plus requests still in flight on the link.
    fn outstanding(&self, engine: usize) -> usize {
        self.slots[engine].server.queue_depth() + self.slots[engine].inflight.len()
    }

    /// `CFcfs` late binding: FIFO-dispatch from the central queue to the
    /// least-outstanding eligible engine (lowest id on ties) while one sits below
    /// the window. A head-of-line request with no live admissible engine leaves the
    /// queue for the failover path instead of blocking everyone behind it.
    fn dispatch_central(&mut self, at: f64) {
        if self.router.discipline != Discipline::CFcfs {
            return;
        }
        while let Some(&id) = self.router.central.front() {
            let best = (0..self.slots.len())
                .filter(|&e| self.eligible(id, e))
                .min_by_key(|&e| (self.outstanding(e), e));
            let Some(best) = best else {
                self.router.central.pop_front();
                self.site[id as usize] = Site::Idle;
                self.fallback_unroutable(at, id);
                continue;
            };
            if self.outstanding(best) >= self.config.dispatch_window {
                break;
            }
            self.router.central.pop_front();
            self.bind(at, id, best);
        }
    }

    /// The `LeastKv` pressure score of one engine: KV tokens resident on its fullest
    /// rank plus in-flight prompt commitments, normalised by its tightest rank's KV
    /// capacity — so a T4's small cache saturates its score long before an H100's.
    fn kv_score(&self, engine: usize) -> f64 {
        let slot = &self.slots[engine];
        let capacity = slot
            .server
            .engine()
            .rank_budgets()
            .iter()
            .map(|budget| budget.kv_capacity_tokens)
            .min()
            .unwrap_or(0)
            .max(1);
        let used = slot
            .server
            .engine()
            .rank_occupancy()
            .iter()
            .map(|occupancy| occupancy.used_tokens)
            .max()
            .unwrap_or(0);
        (used + slot.pending_prompt_tokens) as f64 / capacity as f64
    }

    /// The least-loaded eligible engine for `id` under the KV-pressure score, or
    /// `None` if nothing live can hold it.
    fn least_kv_engine(&self, id: u64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for e in (0..self.slots.len()).filter(|&e| self.eligible(id, e)) {
            let score = self.kv_score(e);
            if best.map_or(true, |(_, s)| score < s) {
                best = Some((e, score));
            }
        }
        best.map(|(e, _)| e)
    }

    /// `DFcfs` correction knob: every `rebalance_every` arrivals, remap one
    /// indirection-table entry from the deepest live engine to the shallowest.
    fn maybe_rebalance(&mut self) {
        self.router.arrivals_since_rebalance += 1;
        let every = self.config.rebalance_every;
        if every == 0 || self.router.arrivals_since_rebalance < every {
            return;
        }
        self.router.arrivals_since_rebalance = 0;
        let live: Vec<usize> = (0..self.slots.len()).filter(|&e| self.slots[e].up).collect();
        if live.len() < 2 {
            return;
        }
        let mut deepest = live[0];
        let mut shallowest = live[0];
        for &e in &live[1..] {
            if self.outstanding(e) > self.outstanding(deepest) {
                deepest = e;
            }
            if self.outstanding(e) < self.outstanding(shallowest) {
                shallowest = e;
            }
        }
        if self.outstanding(deepest) > self.outstanding(shallowest) {
            if let Some(entry) = self.router.table.iter().position(|&e| e == deepest) {
                self.router.table[entry] = shallowest;
                self.router.rebalances += 1;
            }
        }
    }

    /// Binds request `id` to `engine` at time `at`: records the decision, counts the
    /// attempt, and puts the request on the engine's link.
    fn bind(&mut self, at: f64, id: u64, engine: usize) {
        let request = self.requests[id as usize];
        self.records.push(RouteRecord { id, time: at, engine });
        self.engine_of[id as usize] = engine;
        self.attempts[id as usize] += 1;
        let bytes = request.prompt_len as f64 * self.config.bytes_per_token;
        let deliver_at = self.slots[engine].link.delivery(at, bytes);
        self.slots[engine].inflight.push_back((deliver_at, id));
        self.slots[engine].pending_prompt_tokens += request.prompt_len;
        self.slots[engine].routed += 1;
        self.site[id as usize] = Site::OnLink(engine);
    }

    fn report(&self) -> ClusterReport {
        let sink = self.token_sink.borrow();
        let mut ttfts = Vec::new();
        let mut gaps = Vec::new();
        let mut streamed: u64 = 0;
        for (id, times) in sink.token_times.iter().enumerate() {
            streamed += times.len() as u64;
            if let Some(&first) = times.first() {
                ttfts.push(first - self.requests[id].arrival);
            }
            gaps.extend(times.windows(2).map(|w| w[1] - w[0]));
        }
        let engines: Vec<EngineSummary> = self
            .slots
            .iter()
            .map(|slot| {
                let server_report = slot.server.report();
                EngineSummary {
                    name: slot.name.clone(),
                    routed: slot.routed,
                    completed: server_report.completed,
                    streamed_tokens: server_report.streamed_tokens,
                    dropped: server_report.dropped,
                    makespan: slot.server.now(),
                    offload_fraction: server_report.offload_fraction,
                }
            })
            .collect();
        ClusterReport {
            discipline: self.router.discipline.label().to_string(),
            requests: self.requests.len(),
            completed: self.outcome.iter().filter(|&&o| o == Outcome::Completed).count(),
            dropped: self.drops.len(),
            retries: self.retries,
            makespan: engines.iter().map(|e| e.makespan).fold(0.0, f64::max),
            streamed_tokens: streamed,
            ttft: LatencySummary::from_samples(&ttfts),
            itl: LatencySummary::from_samples(&gaps),
            rebalances: self.router.rebalances,
            max_central_queue: self.router.max_central,
            engines,
            routes: self.records.clone(),
            drops: self.drops.clone(),
        }
    }
}

/// An alarm clock over one cluster entity. `kind`/`idx` select which entity's due
/// time it advertises; every dispatch settles the whole cluster (idempotently), so
/// same-tick alarm order cannot change any outcome.
struct Alarm {
    id: ComponentId,
    name: String,
    kind: AlarmKind,
}

enum AlarmKind {
    /// Wakes at `Server::next_activity` of engine `idx`.
    Engine { idx: usize },
    /// Wakes at the head delivery time of link `idx`.
    Link { idx: usize },
    /// Wakes at the next frontend arrival.
    Router,
    /// Wakes at the next effective fault event or retry coming off backoff.
    Fault,
}

impl Alarm {
    fn due(&self, state: &ClusterState) -> Option<f64> {
        match self.kind {
            AlarmKind::Engine { idx } => state.slots[idx].server.next_activity(),
            AlarmKind::Link { idx } => state.slots[idx].inflight.front().map(|&(d, _)| d),
            AlarmKind::Router => {
                state.requests.get(state.next_arrival).map(|request| request.arrival)
            }
            AlarmKind::Fault => match (state.fault_due(), state.retry_due()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

impl Component<ClusterState> for Alarm {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_tick(&self, state: &ClusterState) -> Option<f64> {
        self.due(state)
    }

    fn tick(&mut self, now: f64, state: &mut ClusterState) -> Option<f64> {
        state.settle(now);
        self.due(state)
    }

    fn event_label(&self) -> String {
        "settle".to_string()
    }
}

/// A routed fleet of engines, ready to run a trace to completion.
pub struct Cluster {
    engine: EventEngine<ClusterState>,
}

impl Cluster {
    /// Builds a cluster over named engines (fresh, exactly as [`Server::new`]
    /// requires) serving the given arrival trace.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty, a non-positive window/table size is configured
    /// for the discipline that needs it, any engine already holds requests, the
    /// retry/backoff knobs are not finite and non-negative, or the fault plan
    /// references an engine/request outside the fleet/trace or carries non-positive
    /// degradation parameters.
    pub fn new(engines: Vec<(String, Engine)>, trace: &Trace, config: ClusterConfig) -> Self {
        assert!(!engines.is_empty(), "a cluster needs at least one engine");
        assert!(
            config.discipline != Discipline::CFcfs || config.dispatch_window >= 1,
            "cFCFS needs a dispatch window of at least 1"
        );
        assert!(
            config.discipline != Discipline::DFcfs || config.table_entries_per_engine >= 1,
            "dFCFS needs at least one indirection-table entry per engine"
        );
        assert!(
            config.bytes_per_token.is_finite() && config.bytes_per_token >= 0.0,
            "bytes_per_token must be finite and >= 0"
        );
        assert!(
            config.backoff_base_s.is_finite() && config.backoff_base_s >= 0.0,
            "backoff base must be finite and >= 0"
        );
        assert!(
            config.backoff_cap_s.is_finite() && config.backoff_cap_s >= 0.0,
            "backoff cap must be finite and >= 0"
        );
        let fleet_size = engines.len();
        let slots: Vec<Slot> = engines
            .into_iter()
            .map(|(name, engine)| Slot {
                capacity: engine.max_context_capacity(),
                name,
                server: Server::new(engine),
                link: SerialLine::new(config.link_latency_s, config.link_bytes_per_s),
                inflight: VecDeque::new(),
                routed: 0,
                pending_prompt_tokens: 0,
                up: true,
            })
            .collect();
        let requests: Vec<FrontendRequest> = trace
            .requests()
            .iter()
            .map(|r| FrontendRequest {
                arrival: r.arrival,
                prompt_len: r.prompt_len,
                output_len: r.output_len,
            })
            .collect();
        let deadline: Vec<f64> = requests
            .iter()
            .map(|r| config.slo.map_or(f64::INFINITY, |slo| slo.deadline(r.arrival, r.output_len)))
            .collect();
        let mut fault_events = config.fault_plan.sorted_events();
        for event in &fault_events {
            assert!(
                event.at.is_finite() && event.at >= 0.0,
                "fault event times must be finite and >= 0"
            );
            match event.kind {
                FaultKind::DeadlineExpire => assert!(
                    (event.request as usize) < requests.len(),
                    "deadline fault targets request {} outside the trace",
                    event.request
                ),
                _ => assert!(
                    event.engine < fleet_size,
                    "fault event targets engine {} outside the fleet",
                    event.engine
                ),
            }
            if event.kind == FaultKind::LinkDegrade {
                assert!(
                    event.bandwidth_factor.is_finite() && event.bandwidth_factor > 0.0,
                    "link degradation needs a positive finite bandwidth factor"
                );
                assert!(
                    event.added_latency_s.is_finite() && event.added_latency_s >= 0.0,
                    "added link latency must be finite and >= 0"
                );
            }
        }
        if config.slo.is_some() {
            for (id, &at) in deadline.iter().enumerate() {
                fault_events.push(FaultEvent {
                    at,
                    kind: FaultKind::DeadlineExpire,
                    engine: 0,
                    request: id as u64,
                    bandwidth_factor: 1.0,
                    added_latency_s: 0.0,
                });
            }
            fault_events.sort_by(|a, b| a.at.total_cmp(&b.at));
        }
        let token_sink = Rc::new(RefCell::new(TokenSink {
            token_times: vec![Vec::new(); requests.len()],
            firsts: Vec::new(),
            lasts: Vec::new(),
        }));
        let router = RouterState {
            discipline: config.discipline,
            rr_next: 0,
            central: VecDeque::new(),
            max_central: 0,
            table: (0..fleet_size * config.table_entries_per_engine.max(1))
                .map(|entry| entry % fleet_size)
                .collect(),
            seq: 0,
            arrivals_since_rebalance: 0,
            rebalances: 0,
        };
        let engine_names: Vec<String> = slots.iter().map(|s| s.name.clone()).collect();
        let request_count = requests.len();
        let state = ClusterState {
            slots,
            engine_of: vec![usize::MAX; request_count],
            requests,
            next_arrival: 0,
            router,
            records: Vec::new(),
            token_sink,
            fault_events,
            fault_cursor: 0,
            site: vec![Site::Idle; request_count],
            outcome: vec![Outcome::Pending; request_count],
            attempts: vec![0; request_count],
            deadline,
            retry_queue: Vec::new(),
            drops: Vec::new(),
            retries: 0,
            config: config.clone(),
        };
        let mut event_engine = EventEngine::new(state, TieBreak::from_seed(config.tie_break_seed));
        let mut id = 0;
        for (idx, name) in engine_names.iter().enumerate() {
            event_engine.add_component(Box::new(Alarm {
                id,
                name: format!("engine.{name}"),
                kind: AlarmKind::Engine { idx },
            }));
            id += 1;
        }
        for (idx, name) in engine_names.iter().enumerate() {
            event_engine.add_component(Box::new(Alarm {
                id,
                name: format!("link.{name}"),
                kind: AlarmKind::Link { idx },
            }));
            id += 1;
        }
        event_engine.add_component(Box::new(Alarm {
            id,
            name: "router".to_string(),
            kind: AlarmKind::Router,
        }));
        id += 1;
        event_engine.add_component(Box::new(Alarm {
            id,
            name: "faults".to_string(),
            kind: AlarmKind::Fault,
        }));
        Self { engine: event_engine }
    }

    /// Runs the fleet until every request reached a terminal state and summarises
    /// the run.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds the configured event budget (livelock guard).
    pub fn run(mut self) -> ClusterReport {
        let max_events = self.engine.shared().config.max_events;
        self.engine.run(max_events);
        let (mut state, _) = self.engine.into_parts();
        state.finalize();
        state.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::{EngineConfig, NeoScheduler};
    use neo_sim::{CostModel, ModelDesc, Testbed};
    use neo_workload::{synthetic, ArrivalProcess};

    fn a10g_engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()))
    }

    fn t4_engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()))
    }

    fn homogeneous_pair() -> Vec<(String, Engine)> {
        vec![("a10g-0".to_string(), a10g_engine()), ("a10g-1".to_string(), a10g_engine())]
    }

    fn run(
        discipline: Discipline,
        n: usize,
        rate: f64,
        fleet: Vec<(String, Engine)>,
    ) -> ClusterReport {
        let trace = synthetic(n, 300, 12, ArrivalProcess::Uniform { rate }, 11);
        let config = ClusterConfig { discipline, ..ClusterConfig::default() };
        Cluster::new(fleet, &trace, config).run()
    }

    #[test]
    fn round_robin_splits_a_pair_evenly_and_serves_everything() {
        let report = run(Discipline::RoundRobin, 10, 4.0, homogeneous_pair());
        assert_eq!(report.completed, 10);
        assert_eq!(report.engines[0].routed, 5);
        assert_eq!(report.engines[1].routed, 5);
        assert_eq!(report.routes.len(), 10);
        // Conservation: every output token of the trace streamed exactly once.
        assert_eq!(report.streamed_tokens, report.engines.iter().map(|e| e.streamed_tokens).sum());
        let ttft = report.ttft.expect("every request produced tokens");
        assert_eq!(ttft.count, 10);
        assert!(ttft.mean > 0.0, "TTFT is measured from the frontend arrival");
    }

    #[test]
    fn cfcfs_binds_late_and_bounds_outstanding_work() {
        // A burst at t=0: the central queue must engage and dispatch FIFO.
        let trace = synthetic(12, 300, 12, ArrivalProcess::AllAtOnce, 5);
        let config = ClusterConfig {
            discipline: Discipline::CFcfs,
            dispatch_window: 2,
            ..ClusterConfig::default()
        };
        let report = Cluster::new(homogeneous_pair(), &trace, config).run();
        assert_eq!(report.completed, 12);
        assert!(report.max_central_queue >= 8, "the window must hold the burst back");
        // Late binding: dispatch times are spread out even though all arrivals are 0.
        assert!(report.routes.iter().any(|r| r.time > 0.0));
        // FIFO: binding order is id order.
        let ids: Vec<u64> = report.routes.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn dfcfs_rebalances_the_indirection_table_under_skew() {
        // A fleet whose second engine is far slower (T4): static round-robin entries
        // pile work on it, and the periodic remap must fire.
        let fleet = vec![("a10g".to_string(), a10g_engine()), ("t4".to_string(), t4_engine())];
        let trace = synthetic(40, 300, 12, ArrivalProcess::Uniform { rate: 6.0 }, 9);
        let config = ClusterConfig {
            discipline: Discipline::DFcfs,
            rebalance_every: 8,
            ..ClusterConfig::default()
        };
        let report = Cluster::new(fleet, &trace, config).run();
        assert_eq!(report.completed, 40);
        assert!(report.rebalances >= 1, "skew must trigger at least one remap");
    }

    #[test]
    fn least_kv_loads_the_bigger_cache_harder_than_round_robin_does() {
        let hetero = || vec![("a10g".to_string(), a10g_engine()), ("t4".to_string(), t4_engine())];
        let rr = run(Discipline::RoundRobin, 24, 6.0, hetero());
        let kv = run(Discipline::LeastKv, 24, 6.0, hetero());
        assert_eq!(rr.completed, 24);
        assert_eq!(kv.completed, 24);
        assert_eq!(rr.engines[1].routed, 12, "round-robin ignores the T4's capacity");
        assert!(
            kv.engines[1].routed < rr.engines[1].routed,
            "least-kv must route less work to the capacity-starved T4 ({} vs {})",
            kv.engines[1].routed,
            rr.engines[1].routed
        );
    }

    #[test]
    fn fuzzed_tie_break_seeds_leave_the_full_report_bit_identical() {
        let reference = format!("{:?}", run(Discipline::LeastKv, 12, 5.0, homogeneous_pair()));
        for seed in [1u64, 424242, u64::MAX] {
            let trace = synthetic(12, 300, 12, ArrivalProcess::Uniform { rate: 5.0 }, 11);
            let config = ClusterConfig {
                discipline: Discipline::LeastKv,
                tie_break_seed: seed,
                ..ClusterConfig::default()
            };
            let fuzzed = format!("{:?}", Cluster::new(homogeneous_pair(), &trace, config).run());
            assert_eq!(reference, fuzzed, "seed {seed} changed the cluster outcome");
        }
    }

    #[test]
    fn report_serialises_to_json() {
        let report = run(Discipline::CFcfs, 8, 4.0, homogeneous_pair());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"discipline\""));
        assert!(json.contains("cFCFS"));
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn empty_fleet_is_rejected() {
        let trace = synthetic(1, 100, 4, ArrivalProcess::AllAtOnce, 1);
        let _ = Cluster::new(Vec::new(), &trace, ClusterConfig::default());
    }

    #[test]
    fn failover_completes_everything_on_the_survivor() {
        let trace = synthetic(10, 300, 12, ArrivalProcess::Uniform { rate: 4.0 }, 11);
        let config = ClusterConfig {
            fault_plan: FaultPlan::new().engine_fail(0.5, 0),
            ..ClusterConfig::default()
        };
        let report = Cluster::new(homogeneous_pair(), &trace, config).run();
        assert_eq!(report.completed, 10, "every orphan must fail over: {:?}", report.drops);
        assert_eq!(report.dropped, 0);
        assert!(report.retries >= 1, "the dead engine held work at t=0.5");
        assert_eq!(report.engines[0].completed + report.engines[1].completed, 10);
        assert!(
            report.engines[1].completed > report.engines[0].completed,
            "the survivor must carry the fleet"
        );
        // Conservation: a retried request's discarded partial output is not
        // double-counted — the faulted run streams exactly what a clean run does.
        let clean = run(Discipline::RoundRobin, 10, 4.0, homogeneous_pair());
        assert_eq!(report.streamed_tokens, clean.streamed_tokens);
    }

    #[test]
    fn without_failover_the_dead_engines_requests_are_shed() {
        let trace = synthetic(10, 300, 12, ArrivalProcess::Uniform { rate: 4.0 }, 11);
        let config = ClusterConfig {
            fault_plan: FaultPlan::new().engine_fail(0.5, 0),
            failover: false,
            ..ClusterConfig::default()
        };
        let report = Cluster::new(homogeneous_pair(), &trace, config).run();
        assert_eq!(report.completed + report.dropped, 10, "every request must end terminal");
        assert!(report.dropped >= 1, "the dead engine held work at t=0.5");
        assert!(report.drops.iter().all(|d| d.reason == "engine_failed"));
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn requests_arriving_while_the_fleet_is_down_wait_for_recovery() {
        let fleet = vec![("a10g".to_string(), a10g_engine())];
        let trace = synthetic(4, 200, 8, ArrivalProcess::Uniform { rate: 50.0 }, 3);
        let config = ClusterConfig {
            fault_plan: FaultPlan::new().engine_fail(0.01, 0).engine_recover(5.0, 0),
            ..ClusterConfig::default()
        };
        let report = Cluster::new(fleet, &trace, config).run();
        assert_eq!(report.completed, 4, "recovery must drain the parked queue: {:?}", report.drops);
        let late = report.routes.iter().filter(|r| r.time >= 5.0).count();
        assert!(late >= 3, "arrivals during the outage re-dispatch after recovery");
    }

    #[test]
    fn a_request_no_engine_can_ever_hold_is_shed_typed() {
        let trace = synthetic(2, 2_000_000, 4, ArrivalProcess::AllAtOnce, 1);
        let report = Cluster::new(homogeneous_pair(), &trace, ClusterConfig::default()).run();
        assert_eq!(report.completed, 0);
        assert_eq!(report.dropped, 2);
        assert!(report.drops.iter().all(|d| d.reason == "no_admissible_engine"));
        assert!(report.routes.is_empty(), "never-admissible requests must not bind");
    }

    #[test]
    fn an_impossible_slo_sheds_with_deadline_drops() {
        let trace = synthetic(6, 300, 12, ArrivalProcess::Uniform { rate: 4.0 }, 11);
        let config = ClusterConfig {
            slo: Some(neo_workload::SloPolicy::new(1e-6, 0.0)),
            ..ClusterConfig::default()
        };
        let report = Cluster::new(homogeneous_pair(), &trace, config).run();
        assert_eq!(report.dropped, 6, "a microsecond deadline is unmeetable");
        assert_eq!(report.completed, 0);
        assert!(report.drops.iter().all(|d| d.reason == "deadline_expired"));
    }

    #[test]
    fn a_degraded_link_inflates_frontend_ttft() {
        let fleet = || vec![("a10g".to_string(), a10g_engine())];
        let trace = synthetic(4, 300, 8, ArrivalProcess::Uniform { rate: 2.0 }, 7);
        let clean =
            Cluster::new(fleet(), &trace, ClusterConfig::default()).run().ttft.unwrap().mean;
        let config = ClusterConfig {
            fault_plan: FaultPlan::new().link_degrade(0.0, 0, 0.01, 0.25),
            ..ClusterConfig::default()
        };
        let degraded = Cluster::new(fleet(), &trace, config).run();
        assert_eq!(degraded.completed, 4, "degradation slows delivery but loses nothing");
        assert!(
            degraded.ttft.unwrap().mean > clean + 0.2,
            "added propagation latency must show up in frontend TTFT"
        );
    }

    #[test]
    fn retry_budget_bounds_redispatches() {
        // Both engines flap so orphans keep dying; the budget must cap the churn.
        let mut plan = FaultPlan::new();
        for k in 0..40 {
            let at = 0.2 + 0.1 * k as f64;
            plan = plan.engine_fail(at, k % 2).engine_recover(at + 0.05, k % 2);
        }
        let trace = synthetic(8, 300, 12, ArrivalProcess::AllAtOnce, 5);
        let config = ClusterConfig {
            fault_plan: plan,
            retry_budget: 2,
            backoff_base_s: 0.01,
            backoff_cap_s: 0.02,
            ..ClusterConfig::default()
        };
        let report = Cluster::new(homogeneous_pair(), &trace, config).run();
        assert_eq!(report.completed + report.dropped, 8);
        assert!(report.retries <= 8 * 2, "retries must respect the per-request budget");
    }

    #[test]
    fn fault_runs_stay_bit_identical_across_fuzzed_seeds() {
        let plan = || FaultPlan::new().engine_fail(0.5, 0).engine_recover(2.0, 0);
        let reference = {
            let trace = synthetic(12, 300, 12, ArrivalProcess::Uniform { rate: 5.0 }, 11);
            let config = ClusterConfig { fault_plan: plan(), ..ClusterConfig::default() };
            format!("{:?}", Cluster::new(homogeneous_pair(), &trace, config).run())
        };
        for seed in [1u64, 424242] {
            let trace = synthetic(12, 300, 12, ArrivalProcess::Uniform { rate: 5.0 }, 11);
            let config = ClusterConfig {
                fault_plan: plan(),
                tie_break_seed: seed,
                ..ClusterConfig::default()
            };
            let fuzzed = format!("{:?}", Cluster::new(homogeneous_pair(), &trace, config).run());
            assert_eq!(reference, fuzzed, "seed {seed} changed a faulted run");
        }
    }
}
