//! The fleet simulation: N servers, N links and a router in one event heap.
//!
//! # Anatomy
//!
//! ```text
//!                        ┌─ link 0 ─► Server 0 (Engine 0)
//!   Trace ──► Router ────┼─ link 1 ─► Server 1 (Engine 1)
//!  (arrivals) (Discipline)└─ link 2 ─► Server 2 (Engine 2)
//! ```
//!
//! All of it lives in one `ClusterState` (private), the shared state of a
//! [`neo_sim::event::EventEngine`]. The registered components are *alarm clocks* only:
//! each advertises when its entity next has work (`next_tick`) and, when dispatched,
//! calls `ClusterState::settle` — the single function that actually moves the
//! cluster. `settle(now)` repeatedly takes the earliest due instant and processes
//! every event at it in a fixed kind order (link deliveries, then engine steps, then
//! frontend arrivals, then central dispatch), so the simulation's outputs are
//! independent of which same-tick alarm the event engine happened to dispatch first —
//! the property the fuzzed tie-break seeds verify bit-exactly.
//!
//! # Time semantics
//!
//! Engine iterations are atomic ([`neo_serve::Server::poll`]): an iteration starting
//! at or before the settled instant runs to completion, which may carry that engine's
//! clock past it. Requests delivered to an engine whose clock has run ahead are
//! admitted at the engine's current time — exactly the behaviour of a real engine that
//! was mid-iteration when the request landed. Cluster-level TTFT is therefore measured
//! from the *frontend* arrival (via streaming callbacks), never from the server-local
//! admission time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use neo_core::Engine;
use neo_serve::metrics::LatencySummary;
use neo_serve::Server;
use neo_sim::event::{Component, ComponentId, EventEngine, SerialLine, TieBreak};
use neo_workload::Trace;
use serde::Serialize;

use crate::discipline::Discipline;

/// Configuration of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// How the router binds arrivals to engines.
    pub discipline: Discipline,
    /// `CFcfs` only: a request is dispatched once some engine's outstanding work
    /// (queue depth + in-flight on its link) is below this window. 1 would starve
    /// continuous batching; a few requests keep every engine's batch fed while the
    /// central queue stays work-conserving.
    pub dispatch_window: usize,
    /// `DFcfs` only: remap one indirection-table entry from the deepest to the
    /// shallowest engine every this many arrivals (0 = never rebalance).
    pub rebalance_every: usize,
    /// `DFcfs` only: indirection-table entries per engine (the table has
    /// `engines × this` slots, initialized round-robin).
    pub table_entries_per_engine: usize,
    /// Propagation latency of each frontend→engine link, in seconds.
    pub link_latency_s: f64,
    /// Bandwidth of each frontend→engine link, in bytes per second.
    pub link_bytes_per_s: f64,
    /// Request payload priced on the link: bytes per prompt token.
    pub bytes_per_token: f64,
    /// Same-tick dispatch-order seed for the cluster event heap — `0` is the pinned
    /// deterministic order, anything else a fuzzed permutation that must leave every
    /// output bit-identical (see [`neo_sim::event::TieBreak::from_seed`]).
    pub tie_break_seed: u64,
    /// Event budget for the whole run (livelock guard).
    pub max_events: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            discipline: Discipline::RoundRobin,
            dispatch_window: 4,
            rebalance_every: 32,
            table_entries_per_engine: 4,
            // A 10 Gbit/s datacenter hop with ~200 µs of RPC latency.
            link_latency_s: 2e-4,
            link_bytes_per_s: 1.25e9,
            bytes_per_token: 4.0,
            tie_break_seed: 0,
            max_events: 5_000_000,
        }
    }
}

/// One routing decision, in binding order — the pinned determinism surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RouteRecord {
    /// Frontend request id (its index in the arrival trace).
    pub id: u64,
    /// Binding time: the frontend arrival for early-binding disciplines, the central
    /// dispatch instant for `CFcfs`.
    pub time: f64,
    /// Engine the request was bound to.
    pub engine: usize,
}

/// Per-engine slice of a [`ClusterReport`].
#[derive(Debug, Clone, Serialize)]
pub struct EngineSummary {
    /// Engine name as registered with [`Cluster::new`].
    pub name: String,
    /// Requests routed to this engine.
    pub routed: usize,
    /// Requests it completed.
    pub completed: usize,
    /// Tokens it streamed.
    pub streamed_tokens: u64,
    /// Its engine clock when the cluster drained.
    pub makespan: f64,
    /// Fraction of its busy iterations that offloaded attention to the CPU.
    pub offload_fraction: f64,
}

/// What a cluster run did, summarised when every request drained.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Discipline label (resolvable via [`Discipline::from_label`]).
    pub discipline: String,
    /// Requests in the arrival trace.
    pub requests: usize,
    /// Requests completed across the fleet.
    pub completed: usize,
    /// Time the last engine finished.
    pub makespan: f64,
    /// Tokens streamed across the fleet.
    pub streamed_tokens: u64,
    /// Time-to-first-token measured from the *frontend* arrival.
    pub ttft: Option<LatencySummary>,
    /// Inter-token gaps, per request, across the fleet.
    pub itl: Option<LatencySummary>,
    /// `DFcfs`: indirection-table remaps performed.
    pub rebalances: usize,
    /// `CFcfs`: high-water mark of the central queue.
    pub max_central_queue: usize,
    /// Per-engine summaries, in registration order.
    pub engines: Vec<EngineSummary>,
    /// Every routing decision, in binding order.
    pub routes: Vec<RouteRecord>,
}

/// One frontend request (a trace row with its global id implied by position).
#[derive(Debug, Clone, Copy)]
struct FrontendRequest {
    arrival: f64,
    prompt_len: usize,
    output_len: usize,
}

/// One engine's seat in the cluster: its server, its link, and the requests in
/// flight between router and engine.
struct Slot {
    name: String,
    server: Server,
    link: SerialLine,
    /// `(deliver_at, id)` in delivery order (monotone: the link is serial FIFO).
    inflight: VecDeque<(f64, u64)>,
    routed: usize,
    /// Prompt tokens routed here whose first token has not streamed yet — KV
    /// commitments the engine's occupancy counters cannot see yet (the `LeastKv`
    /// signal's in-flight term).
    pending_prompt_tokens: usize,
}

/// Router bookkeeping shared by all disciplines.
struct RouterState {
    discipline: Discipline,
    rr_next: usize,
    /// `CFcfs` central FIFO of frontend ids.
    central: VecDeque<u64>,
    max_central: usize,
    /// `DFcfs` indirection table: entry → engine.
    table: Vec<usize>,
    seq: usize,
    arrivals_since_rebalance: usize,
    rebalances: usize,
}

/// Token events observed by the per-request streaming callbacks.
#[derive(Default)]
struct TokenSink {
    /// Emission times per frontend id.
    token_times: Vec<Vec<f64>>,
    /// Frontend ids whose first token arrived since the last settle drained them.
    firsts: Vec<u64>,
}

/// Shared state of the cluster event engine. All movement happens in
/// [`ClusterState::settle`]; the registered components only decide *when* it runs.
pub(crate) struct ClusterState {
    slots: Vec<Slot>,
    requests: Vec<FrontendRequest>,
    /// Cursor into `requests` (sorted by arrival): the next frontend arrival.
    next_arrival: usize,
    router: RouterState,
    records: Vec<RouteRecord>,
    /// Engine each frontend id was bound to (`usize::MAX` until routed).
    engine_of: Vec<usize>,
    token_sink: Rc<RefCell<TokenSink>>,
    config: ClusterConfig,
}

impl ClusterState {
    /// The earliest instant at which anything in the cluster has work: a link
    /// delivery, an engine's next activity, or a frontend arrival. The central queue
    /// needs no wake-up of its own — it only becomes dispatchable as a consequence of
    /// one of these, and every settle pass ends with a dispatch attempt.
    fn next_due(&self) -> Option<f64> {
        let mut due: Option<f64> = None;
        let mut fold = |t: f64| due = Some(due.map_or(t, |d: f64| d.min(t)));
        for slot in &self.slots {
            if let Some(&(deliver_at, _)) = slot.inflight.front() {
                fold(deliver_at);
            }
            if let Some(at) = slot.server.next_activity() {
                fold(at);
            }
        }
        if let Some(request) = self.requests.get(self.next_arrival) {
            fold(request.arrival);
        }
        due
    }

    /// Processes every cluster event due at or before `now`, earliest instant first,
    /// and within one instant in the fixed kind order: link deliveries → engine
    /// steps → frontend arrivals → central dispatch. This global order is what makes
    /// every routing decision independent of the event heap's same-tick dispatch
    /// order: whichever alarm called `settle` first, the cluster replays identically.
    fn settle(&mut self, now: f64) {
        let mut passes: u64 = 0;
        while let Some(at) = self.next_due() {
            if at > now {
                break;
            }
            passes += 1;
            assert!(
                passes <= self.config.max_events,
                "cluster settle livelocked at t={at} ({} requests pending)",
                self.requests.len() - self.next_arrival
            );
            for e in 0..self.slots.len() {
                while self.slots[e].inflight.front().is_some_and(|&(d, _)| d <= at) {
                    let (deliver_at, id) = self.slots[e].inflight.pop_front().expect("peeked");
                    self.deliver(e, deliver_at, id);
                }
            }
            for e in 0..self.slots.len() {
                if self.slots[e].server.next_activity().is_some_and(|t| t <= at) {
                    self.slots[e].server.poll(at);
                }
            }
            self.drain_sink();
            while self.requests.get(self.next_arrival).is_some_and(|r| r.arrival <= at) {
                let id = self.next_arrival as u64;
                self.next_arrival += 1;
                self.route(at, id);
            }
            self.dispatch_central(at);
        }
    }

    /// Hands a delivered request to its engine's server, wiring the streaming
    /// callback that timestamps every token against the frontend clock.
    fn deliver(&mut self, engine: usize, at: f64, id: u64) {
        let request = self.requests[id as usize];
        let sink = Rc::clone(&self.token_sink);
        self.slots[engine].server.submit_with_callback(
            at,
            request.prompt_len,
            request.output_len,
            move |event| {
                let mut sink = sink.borrow_mut();
                if event.index == 0 {
                    sink.firsts.push(id);
                }
                sink.token_times[id as usize].push(event.time);
            },
        );
    }

    /// Releases the `pending_prompt_tokens` commitment of every request whose first
    /// token streamed since the last drain (its prompt is now visible in the
    /// engine's own KV occupancy counters).
    fn drain_sink(&mut self) {
        let firsts: Vec<u64> = self.token_sink.borrow_mut().firsts.drain(..).collect();
        for id in firsts {
            let engine = self.engine_of[id as usize];
            let prompt = self.requests[id as usize].prompt_len;
            self.slots[engine].pending_prompt_tokens =
                self.slots[engine].pending_prompt_tokens.saturating_sub(prompt);
        }
    }

    /// Routes one frontend arrival at time `at` under the configured discipline.
    fn route(&mut self, at: f64, id: u64) {
        match self.router.discipline {
            Discipline::RoundRobin => {
                let engine = self.router.rr_next % self.slots.len();
                self.router.rr_next += 1;
                self.bind(at, id, engine);
            }
            Discipline::DFcfs => {
                let entry = self.router.seq % self.router.table.len();
                self.router.seq += 1;
                let engine = self.router.table[entry];
                self.bind(at, id, engine);
                self.maybe_rebalance();
            }
            Discipline::LeastKv => {
                let engine = self.least_kv_engine();
                self.bind(at, id, engine);
            }
            Discipline::CFcfs => {
                self.router.central.push_back(id);
                self.router.max_central = self.router.max_central.max(self.router.central.len());
            }
        }
    }

    /// Outstanding work per engine as the request-count disciplines see it: the
    /// server's queue depth plus requests still in flight on the link.
    fn outstanding(&self, engine: usize) -> usize {
        self.slots[engine].server.queue_depth() + self.slots[engine].inflight.len()
    }

    /// `CFcfs` late binding: FIFO-dispatch from the central queue to the
    /// least-outstanding engine (lowest id on ties) while one sits below the window.
    fn dispatch_central(&mut self, at: f64) {
        if self.router.discipline != Discipline::CFcfs {
            return;
        }
        while !self.router.central.is_empty() {
            let mut best = 0;
            for e in 1..self.slots.len() {
                if self.outstanding(e) < self.outstanding(best) {
                    best = e;
                }
            }
            if self.outstanding(best) >= self.config.dispatch_window {
                break;
            }
            let id = self.router.central.pop_front().expect("non-empty");
            self.bind(at, id, best);
        }
    }

    /// The `LeastKv` pressure score of one engine: KV tokens resident on its fullest
    /// rank plus in-flight prompt commitments, normalised by its tightest rank's KV
    /// capacity — so a T4's small cache saturates its score long before an H100's.
    fn kv_score(&self, engine: usize) -> f64 {
        let slot = &self.slots[engine];
        let capacity = slot
            .server
            .engine()
            .rank_budgets()
            .iter()
            .map(|budget| budget.kv_capacity_tokens)
            .min()
            .unwrap_or(0)
            .max(1);
        let used = slot
            .server
            .engine()
            .rank_occupancy()
            .iter()
            .map(|occupancy| occupancy.used_tokens)
            .max()
            .unwrap_or(0);
        (used + slot.pending_prompt_tokens) as f64 / capacity as f64
    }

    fn least_kv_engine(&self) -> usize {
        let mut best = 0;
        let mut best_score = self.kv_score(0);
        for e in 1..self.slots.len() {
            let score = self.kv_score(e);
            if score < best_score {
                best = e;
                best_score = score;
            }
        }
        best
    }

    /// `DFcfs` correction knob: every `rebalance_every` arrivals, remap one
    /// indirection-table entry from the deepest engine to the shallowest.
    fn maybe_rebalance(&mut self) {
        self.router.arrivals_since_rebalance += 1;
        let every = self.config.rebalance_every;
        if every == 0 || self.router.arrivals_since_rebalance < every {
            return;
        }
        self.router.arrivals_since_rebalance = 0;
        let depths: Vec<usize> = (0..self.slots.len()).map(|e| self.outstanding(e)).collect();
        let mut deepest = 0;
        let mut shallowest = 0;
        for e in 1..depths.len() {
            if depths[e] > depths[deepest] {
                deepest = e;
            }
            if depths[e] < depths[shallowest] {
                shallowest = e;
            }
        }
        if depths[deepest] > depths[shallowest] {
            if let Some(entry) = self.router.table.iter().position(|&e| e == deepest) {
                self.router.table[entry] = shallowest;
                self.router.rebalances += 1;
            }
        }
    }

    /// Binds request `id` to `engine` at time `at`: records the decision and puts
    /// the request on the engine's link.
    fn bind(&mut self, at: f64, id: u64, engine: usize) {
        let request = self.requests[id as usize];
        self.records.push(RouteRecord { id, time: at, engine });
        self.engine_of[id as usize] = engine;
        let bytes = request.prompt_len as f64 * self.config.bytes_per_token;
        let deliver_at = self.slots[engine].link.delivery(at, bytes);
        self.slots[engine].inflight.push_back((deliver_at, id));
        self.slots[engine].pending_prompt_tokens += request.prompt_len;
        self.slots[engine].routed += 1;
    }

    fn report(&self) -> ClusterReport {
        let sink = self.token_sink.borrow();
        let mut ttfts = Vec::new();
        let mut gaps = Vec::new();
        let mut streamed: u64 = 0;
        for (id, times) in sink.token_times.iter().enumerate() {
            streamed += times.len() as u64;
            if let Some(&first) = times.first() {
                ttfts.push(first - self.requests[id].arrival);
            }
            gaps.extend(times.windows(2).map(|w| w[1] - w[0]));
        }
        let engines: Vec<EngineSummary> = self
            .slots
            .iter()
            .map(|slot| {
                let server_report = slot.server.report();
                EngineSummary {
                    name: slot.name.clone(),
                    routed: slot.routed,
                    completed: server_report.completed,
                    streamed_tokens: server_report.streamed_tokens,
                    makespan: slot.server.now(),
                    offload_fraction: server_report.offload_fraction,
                }
            })
            .collect();
        ClusterReport {
            discipline: self.router.discipline.label().to_string(),
            requests: self.requests.len(),
            completed: engines.iter().map(|e| e.completed).sum(),
            makespan: engines.iter().map(|e| e.makespan).fold(0.0, f64::max),
            streamed_tokens: streamed,
            ttft: LatencySummary::from_samples(&ttfts),
            itl: LatencySummary::from_samples(&gaps),
            rebalances: self.router.rebalances,
            max_central_queue: self.router.max_central,
            engines,
            routes: self.records.clone(),
        }
    }
}

/// An alarm clock over one cluster entity. `kind`/`idx` select which entity's due
/// time it advertises; every dispatch settles the whole cluster (idempotently), so
/// same-tick alarm order cannot change any outcome.
struct Alarm {
    id: ComponentId,
    name: String,
    kind: AlarmKind,
}

enum AlarmKind {
    /// Wakes at `Server::next_activity` of engine `idx`.
    Engine { idx: usize },
    /// Wakes at the head delivery time of link `idx`.
    Link { idx: usize },
    /// Wakes at the next frontend arrival.
    Router,
}

impl Alarm {
    fn due(&self, state: &ClusterState) -> Option<f64> {
        match self.kind {
            AlarmKind::Engine { idx } => state.slots[idx].server.next_activity(),
            AlarmKind::Link { idx } => state.slots[idx].inflight.front().map(|&(d, _)| d),
            AlarmKind::Router => {
                state.requests.get(state.next_arrival).map(|request| request.arrival)
            }
        }
    }
}

impl Component<ClusterState> for Alarm {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_tick(&self, state: &ClusterState) -> Option<f64> {
        self.due(state)
    }

    fn tick(&mut self, now: f64, state: &mut ClusterState) -> Option<f64> {
        state.settle(now);
        self.due(state)
    }

    fn event_label(&self) -> String {
        "settle".to_string()
    }
}

/// A routed fleet of engines, ready to run a trace to completion.
pub struct Cluster {
    engine: EventEngine<ClusterState>,
}

impl Cluster {
    /// Builds a cluster over named engines (fresh, exactly as [`Server::new`]
    /// requires) serving the given arrival trace.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty, a non-positive window/table size is configured
    /// for the discipline that needs it, or any engine already holds requests.
    pub fn new(engines: Vec<(String, Engine)>, trace: &Trace, config: ClusterConfig) -> Self {
        assert!(!engines.is_empty(), "a cluster needs at least one engine");
        assert!(
            config.discipline != Discipline::CFcfs || config.dispatch_window >= 1,
            "cFCFS needs a dispatch window of at least 1"
        );
        assert!(
            config.discipline != Discipline::DFcfs || config.table_entries_per_engine >= 1,
            "dFCFS needs at least one indirection-table entry per engine"
        );
        assert!(
            config.bytes_per_token.is_finite() && config.bytes_per_token >= 0.0,
            "bytes_per_token must be finite and >= 0"
        );
        let fleet_size = engines.len();
        let slots: Vec<Slot> = engines
            .into_iter()
            .map(|(name, engine)| Slot {
                name,
                server: Server::new(engine),
                link: SerialLine::new(config.link_latency_s, config.link_bytes_per_s),
                inflight: VecDeque::new(),
                routed: 0,
                pending_prompt_tokens: 0,
            })
            .collect();
        let requests: Vec<FrontendRequest> = trace
            .requests()
            .iter()
            .map(|r| FrontendRequest {
                arrival: r.arrival,
                prompt_len: r.prompt_len,
                output_len: r.output_len,
            })
            .collect();
        let token_sink = Rc::new(RefCell::new(TokenSink {
            token_times: vec![Vec::new(); requests.len()],
            firsts: Vec::new(),
        }));
        let router = RouterState {
            discipline: config.discipline,
            rr_next: 0,
            central: VecDeque::new(),
            max_central: 0,
            table: (0..fleet_size * config.table_entries_per_engine.max(1))
                .map(|entry| entry % fleet_size)
                .collect(),
            seq: 0,
            arrivals_since_rebalance: 0,
            rebalances: 0,
        };
        let engine_names: Vec<String> = slots.iter().map(|s| s.name.clone()).collect();
        let state = ClusterState {
            slots,
            engine_of: vec![usize::MAX; requests.len()],
            requests,
            next_arrival: 0,
            router,
            records: Vec::new(),
            token_sink,
            config: config.clone(),
        };
        let mut event_engine = EventEngine::new(state, TieBreak::from_seed(config.tie_break_seed));
        let mut id = 0;
        for (idx, name) in engine_names.iter().enumerate() {
            event_engine.add_component(Box::new(Alarm {
                id,
                name: format!("engine.{name}"),
                kind: AlarmKind::Engine { idx },
            }));
            id += 1;
        }
        for (idx, name) in engine_names.iter().enumerate() {
            event_engine.add_component(Box::new(Alarm {
                id,
                name: format!("link.{name}"),
                kind: AlarmKind::Link { idx },
            }));
            id += 1;
        }
        event_engine.add_component(Box::new(Alarm {
            id,
            name: "router".to_string(),
            kind: AlarmKind::Router,
        }));
        Self { engine: event_engine }
    }

    /// Runs the fleet until every request drained and summarises the run.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds the configured event budget (livelock guard).
    pub fn run(mut self) -> ClusterReport {
        let max_events = self.engine.shared().config.max_events;
        self.engine.run(max_events);
        let (state, _) = self.engine.into_parts();
        state.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::{EngineConfig, NeoScheduler};
    use neo_sim::{CostModel, ModelDesc, Testbed};
    use neo_workload::{synthetic, ArrivalProcess};

    fn a10g_engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()))
    }

    fn t4_engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()))
    }

    fn homogeneous_pair() -> Vec<(String, Engine)> {
        vec![("a10g-0".to_string(), a10g_engine()), ("a10g-1".to_string(), a10g_engine())]
    }

    fn run(
        discipline: Discipline,
        n: usize,
        rate: f64,
        fleet: Vec<(String, Engine)>,
    ) -> ClusterReport {
        let trace = synthetic(n, 300, 12, ArrivalProcess::Uniform { rate }, 11);
        let config = ClusterConfig { discipline, ..ClusterConfig::default() };
        Cluster::new(fleet, &trace, config).run()
    }

    #[test]
    fn round_robin_splits_a_pair_evenly_and_serves_everything() {
        let report = run(Discipline::RoundRobin, 10, 4.0, homogeneous_pair());
        assert_eq!(report.completed, 10);
        assert_eq!(report.engines[0].routed, 5);
        assert_eq!(report.engines[1].routed, 5);
        assert_eq!(report.routes.len(), 10);
        // Conservation: every output token of the trace streamed exactly once.
        assert_eq!(report.streamed_tokens, report.engines.iter().map(|e| e.streamed_tokens).sum());
        let ttft = report.ttft.expect("every request produced tokens");
        assert_eq!(ttft.count, 10);
        assert!(ttft.mean > 0.0, "TTFT is measured from the frontend arrival");
    }

    #[test]
    fn cfcfs_binds_late_and_bounds_outstanding_work() {
        // A burst at t=0: the central queue must engage and dispatch FIFO.
        let trace = synthetic(12, 300, 12, ArrivalProcess::AllAtOnce, 5);
        let config = ClusterConfig {
            discipline: Discipline::CFcfs,
            dispatch_window: 2,
            ..ClusterConfig::default()
        };
        let report = Cluster::new(homogeneous_pair(), &trace, config).run();
        assert_eq!(report.completed, 12);
        assert!(report.max_central_queue >= 8, "the window must hold the burst back");
        // Late binding: dispatch times are spread out even though all arrivals are 0.
        assert!(report.routes.iter().any(|r| r.time > 0.0));
        // FIFO: binding order is id order.
        let ids: Vec<u64> = report.routes.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn dfcfs_rebalances_the_indirection_table_under_skew() {
        // A fleet whose second engine is far slower (T4): static round-robin entries
        // pile work on it, and the periodic remap must fire.
        let fleet = vec![("a10g".to_string(), a10g_engine()), ("t4".to_string(), t4_engine())];
        let trace = synthetic(40, 300, 12, ArrivalProcess::Uniform { rate: 6.0 }, 9);
        let config = ClusterConfig {
            discipline: Discipline::DFcfs,
            rebalance_every: 8,
            ..ClusterConfig::default()
        };
        let report = Cluster::new(fleet, &trace, config).run();
        assert_eq!(report.completed, 40);
        assert!(report.rebalances >= 1, "skew must trigger at least one remap");
    }

    #[test]
    fn least_kv_loads_the_bigger_cache_harder_than_round_robin_does() {
        let hetero = || vec![("a10g".to_string(), a10g_engine()), ("t4".to_string(), t4_engine())];
        let rr = run(Discipline::RoundRobin, 24, 6.0, hetero());
        let kv = run(Discipline::LeastKv, 24, 6.0, hetero());
        assert_eq!(rr.completed, 24);
        assert_eq!(kv.completed, 24);
        assert_eq!(rr.engines[1].routed, 12, "round-robin ignores the T4's capacity");
        assert!(
            kv.engines[1].routed < rr.engines[1].routed,
            "least-kv must route less work to the capacity-starved T4 ({} vs {})",
            kv.engines[1].routed,
            rr.engines[1].routed
        );
    }

    #[test]
    fn fuzzed_tie_break_seeds_leave_the_full_report_bit_identical() {
        let reference = format!("{:?}", run(Discipline::LeastKv, 12, 5.0, homogeneous_pair()));
        for seed in [1u64, 424242, u64::MAX] {
            let trace = synthetic(12, 300, 12, ArrivalProcess::Uniform { rate: 5.0 }, 11);
            let config = ClusterConfig {
                discipline: Discipline::LeastKv,
                tie_break_seed: seed,
                ..ClusterConfig::default()
            };
            let fuzzed = format!("{:?}", Cluster::new(homogeneous_pair(), &trace, config).run());
            assert_eq!(reference, fuzzed, "seed {seed} changed the cluster outcome");
        }
    }

    #[test]
    fn report_serialises_to_json() {
        let report = run(Discipline::CFcfs, 8, 4.0, homogeneous_pair());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"discipline\""));
        assert!(json.contains("cFCFS"));
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn empty_fleet_is_rejected() {
        let trace = synthetic(1, 100, 4, ArrivalProcess::AllAtOnce, 1);
        let _ = Cluster::new(Vec::new(), &trace, ClusterConfig::default());
    }
}
