//! The two strawman designs of §3.1, used by the pipeline-ablation figure.
//!
//! * **Simple offloading** (Figure 3): decode attention and KV move to the CPU, but the
//!   GPU and CPU never overlap — the CPU attention sits serially after the GPU linear
//!   stage of the same batch. Modelled by placing every CPU decode in batch-0, whose CPU
//!   attention the iteration formula cannot overlap with anything.
//! * **Symmetric pipelining** (Figure 4): the decode batch is split into two *identical*
//!   halves whose linear and attention stages overlap; prefill is not integrated (it runs
//!   in the same GPU stream but contributes nothing to hiding CPU work) and GPU KV memory
//!   is left unused.

use neo_core::batch::{PrefillItem, ScheduleDecision, SubBatch};
use neo_core::scheduler::{ScheduleContext, Scheduler};
use neo_core::ExecutionMode;
use neo_kvcache::Device;

fn admit_prefills_to_cpu(ctx: &ScheduleContext<'_>, batch0: &mut SubBatch, cpu_free: &mut i64) {
    let cfg = ctx.config;
    let mut token_budget = cfg.max_batch_tokens.saturating_sub(batch0.linear_tokens());
    for &id in ctx.waiting {
        if token_budget == 0 || batch0.sequences() >= cfg.max_batch_seqs {
            break;
        }
        let remaining = ctx.remaining_prefill(id);
        if remaining == 0 {
            continue;
        }
        let chunk = remaining.min(token_budget).min(cfg.prefill_chunk.max(1));
        if *cpu_free < chunk as i64 {
            break;
        }
        let already = ctx.requests[&id].prefilled;
        batch0.prefills.push(PrefillItem {
            req: id,
            new_tokens: chunk,
            ctx_after: already + chunk,
            target: Device::Cpu,
        });
        *cpu_free -= chunk as i64;
        token_budget -= chunk;
    }
}

/// Strawman #1: full offload, no GPU/CPU overlap.
#[derive(Debug, Clone, Default)]
pub struct SimpleOffloadScheduler;

impl SimpleOffloadScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for SimpleOffloadScheduler {
    fn schedule(&mut self, ctx: &ScheduleContext<'_>) -> ScheduleDecision {
        let cfg = ctx.config;
        let mut batch0 = SubBatch::new();
        let mut swap_out = Vec::new();
        let mut cpu_free = ctx.cpu_free_tokens as i64;

        for &id in ctx.gpu_run {
            let c = ctx.context_len(id);
            if cpu_free >= (c + 1) as i64 {
                swap_out.push(id);
                cpu_free -= (c + 1) as i64;
                batch0.cpu_decodes.push((id, c));
            }
        }
        for &id in ctx.cpu_run {
            if batch0.sequences() >= cfg.max_batch_seqs || cpu_free <= 0 {
                break;
            }
            batch0.cpu_decodes.push((id, ctx.context_len(id)));
            cpu_free -= 1;
        }
        admit_prefills_to_cpu(ctx, &mut batch0, &mut cpu_free);

        // Everything sits in batch-0: the iteration formula then serialises the CPU
        // attention after the GPU stages (`max(Tl1 + Tga0, Tca0)` with `Tl1 = 0`), i.e. no
        // overlap — exactly the simple-offloading timeline of Figure 3.
        let decision = ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0,
            batch1: SubBatch::new(),
            swap_out,
            swap_in: Vec::new(),
            preempt: Vec::new(),
        };
        if decision.is_idle() {
            ScheduleDecision::idle()
        } else {
            decision
        }
    }

    fn name(&self) -> &'static str {
        "simple-offload"
    }
}

/// Strawman #2: full offload with two identical decode sub-batches.
#[derive(Debug, Clone, Default)]
pub struct SymmetricPipelineScheduler;

impl SymmetricPipelineScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for SymmetricPipelineScheduler {
    fn schedule(&mut self, ctx: &ScheduleContext<'_>) -> ScheduleDecision {
        let cfg = ctx.config;
        let mut batch0 = SubBatch::new();
        let mut batch1 = SubBatch::new();
        let mut swap_out = Vec::new();
        let mut cpu_free = ctx.cpu_free_tokens as i64;

        // Collect every decode request (all offloaded), then split evenly in two.
        let mut decodes: Vec<(u64, usize)> = Vec::new();
        for &id in ctx.gpu_run {
            let c = ctx.context_len(id);
            if cpu_free >= (c + 1) as i64 {
                swap_out.push(id);
                cpu_free -= (c + 1) as i64;
                decodes.push((id, c));
            }
        }
        for &id in ctx.cpu_run {
            if decodes.len() >= 2 * cfg.max_batch_seqs || cpu_free <= 0 {
                break;
            }
            decodes.push((id, ctx.context_len(id)));
            cpu_free -= 1;
        }
        for (i, item) in decodes.into_iter().enumerate() {
            if i % 2 == 0 {
                batch0.cpu_decodes.push(item);
            } else {
                batch1.cpu_decodes.push(item);
            }
        }

        admit_prefills_to_cpu(ctx, &mut batch0, &mut cpu_free);

        let decision = ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0,
            batch1,
            swap_out,
            swap_in: Vec::new(),
            preempt: Vec::new(),
        };
        if decision.is_idle() {
            ScheduleDecision::idle()
        } else {
            decision
        }
    }

    fn name(&self) -> &'static str {
        "symmetric-pipeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::config::EngineConfig;
    use neo_core::engine::Engine;
    use neo_core::request::Request;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn engine(sched: Box<dyn Scheduler>) -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), sched)
    }

    fn run_workload(sched: Box<dyn Scheduler>) -> (f64, usize) {
        let mut e = engine(sched);
        for id in 0..24 {
            e.submit(Request::new(id, 0.0, 400, 32));
        }
        e.run_to_completion(200_000);
        assert_eq!(e.completed().len(), 24);
        (e.now(), e.completed().len())
    }

    #[test]
    fn both_strawmen_complete_workloads() {
        let (t_simple, n1) = run_workload(Box::new(SimpleOffloadScheduler::new()));
        let (t_sym, n2) = run_workload(Box::new(SymmetricPipelineScheduler::new()));
        assert_eq!(n1, 24);
        assert_eq!(n2, 24);
        assert!(t_simple > 0.0 && t_sym > 0.0);
    }

    #[test]
    fn symmetric_overlap_beats_simple_offloading() {
        // Overlapping the two halves must not be slower than fully serialising GPU and CPU
        // stages (Figure 4 vs Figure 3).
        let (t_simple, _) = run_workload(Box::new(SimpleOffloadScheduler::new()));
        let (t_sym, _) = run_workload(Box::new(SymmetricPipelineScheduler::new()));
        assert!(
            t_sym <= t_simple * 1.05,
            "symmetric pipelining ({t_sym:.2}s) should not lose to simple offloading ({t_simple:.2}s)"
        );
    }

    #[test]
    fn symmetric_splits_decodes_roughly_evenly() {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let mut e =
            Engine::new(cost, EngineConfig::default(), Box::new(SymmetricPipelineScheduler::new()));
        for id in 0..30 {
            e.submit(Request::new(id, 0.0, 200, 40));
        }
        // After prefill settles, decode iterations should offload all 30 requests.
        let mut max_offloaded = 0;
        for _ in 0..200 {
            if e.is_idle() {
                break;
            }
            let r = e.step();
            max_offloaded = max_offloaded.max(r.cpu_offloaded);
        }
        assert!(max_offloaded >= 30, "all decodes offloaded, saw {max_offloaded}");
    }

    #[test]
    fn strawmen_report_names() {
        assert_eq!(SimpleOffloadScheduler::new().name(), "simple-offload");
        assert_eq!(SymmetricPipelineScheduler::new().name(), "symmetric-pipeline");
    }
}
