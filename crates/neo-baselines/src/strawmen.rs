//! The two strawman designs of §3.1, used by the pipeline-ablation figure.
//!
//! * **Simple offloading** (Figure 3): decode attention and KV move to the CPU, but the
//!   GPU and CPU never overlap — the CPU attention sits serially after the GPU linear
//!   stage of the same batch. Modelled by placing every CPU decode in batch-0, whose CPU
//!   attention the iteration formula cannot overlap with anything.
//! * **Symmetric pipelining** (Figure 4): the decode batch is split into two *identical*
//!   halves whose linear and attention stages overlap; prefill is not integrated (it runs
//!   in the same GPU stream but contributes nothing to hiding CPU work) and GPU KV memory
//!   is left unused.

use neo_core::policy::{IterationPlan, SchedulerPolicy};
use neo_core::scheduler::ScheduleContext;
use neo_core::ExecutionMode;

use crate::common::{admit_prefills_to_cpu, collect_full_offload_decodes};

/// Strawman #1: full offload, no GPU/CPU overlap.
#[derive(Debug, Clone, Default)]
pub struct SimpleOffloadScheduler;

impl SimpleOffloadScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl SchedulerPolicy for SimpleOffloadScheduler {
    fn policy_name(&self) -> &'static str {
        "simple-offload"
    }

    /// Everything sits in batch-0: the iteration formula then serialises the CPU
    /// attention after the GPU stages (`max(Tl1 + Tga0, Tca0)` with `Tl1 = 0`), i.e. no
    /// overlap — exactly the simple-offloading timeline of Figure 3.
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        plan.mode = ExecutionMode::Asymmetric;
        let decodes = collect_full_offload_decodes(ctx, plan, ctx.config.max_batch_seqs);
        plan.batch0.cpu_decodes = decodes;
    }

    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        admit_prefills_to_cpu(ctx, plan);
    }
}

/// Strawman #2: full offload with two identical decode sub-batches.
#[derive(Debug, Clone, Default)]
pub struct SymmetricPipelineScheduler;

impl SymmetricPipelineScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl SchedulerPolicy for SymmetricPipelineScheduler {
    fn policy_name(&self) -> &'static str {
        "symmetric-pipeline"
    }

    /// Collect every decode request (all offloaded), then split evenly in two identical
    /// halves whose linear and attention stages overlap (Figure 4).
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        plan.mode = ExecutionMode::Asymmetric;
        let decodes = collect_full_offload_decodes(ctx, plan, 2 * ctx.config.max_batch_seqs);
        for (i, item) in decodes.into_iter().enumerate() {
            if i % 2 == 0 {
                plan.batch0.cpu_decodes.push(item);
            } else {
                plan.batch1.cpu_decodes.push(item);
            }
        }
    }

    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        admit_prefills_to_cpu(ctx, plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::config::EngineConfig;
    use neo_core::engine::Engine;
    use neo_core::request::Request;
    use neo_core::Scheduler;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn engine(sched: Box<dyn Scheduler>) -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), sched)
    }

    fn run_workload(sched: Box<dyn Scheduler>) -> (f64, usize) {
        let mut e = engine(sched);
        for id in 0..24 {
            e.submit(Request::new(id, 0.0, 400, 32)).unwrap();
        }
        e.run_to_completion(200_000);
        assert_eq!(e.completed().len(), 24);
        (e.now(), e.completed().len())
    }

    #[test]
    fn both_strawmen_complete_workloads() {
        let (t_simple, n1) = run_workload(Box::new(SimpleOffloadScheduler::new()));
        let (t_sym, n2) = run_workload(Box::new(SymmetricPipelineScheduler::new()));
        assert_eq!(n1, 24);
        assert_eq!(n2, 24);
        assert!(t_simple > 0.0 && t_sym > 0.0);
    }

    #[test]
    fn symmetric_overlap_beats_simple_offloading() {
        // Overlapping the two halves must not be slower than fully serialising GPU and CPU
        // stages (Figure 4 vs Figure 3).
        let (t_simple, _) = run_workload(Box::new(SimpleOffloadScheduler::new()));
        let (t_sym, _) = run_workload(Box::new(SymmetricPipelineScheduler::new()));
        assert!(
            t_sym <= t_simple * 1.05,
            "symmetric pipelining ({t_sym:.2}s) should not lose to simple offloading ({t_simple:.2}s)"
        );
    }

    #[test]
    fn symmetric_splits_decodes_roughly_evenly() {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let mut e =
            Engine::new(cost, EngineConfig::default(), Box::new(SymmetricPipelineScheduler::new()));
        for id in 0..30 {
            e.submit(Request::new(id, 0.0, 200, 40)).unwrap();
        }
        // After prefill settles, decode iterations should offload all 30 requests.
        let mut max_offloaded = 0;
        for _ in 0..200 {
            if e.is_idle() {
                break;
            }
            let r = e.step();
            max_offloaded = max_offloaded.max(r.cpu_offloaded);
        }
        assert!(max_offloaded >= 30, "all decodes offloaded, saw {max_offloaded}");
    }

    #[test]
    fn strawmen_report_names() {
        assert_eq!(SimpleOffloadScheduler::new().name(), "simple-offload");
        assert_eq!(SymmetricPipelineScheduler::new().name(), "symmetric-pipeline");
    }
}
