//! PIPO — static pipelined offloading with double-buffered transfer/compute overlap.
//!
//! PIPO (Liu et al., 2025 — see `PAPERS.md`) targets consumer devices whose GPU cannot
//! hold the model state: it keeps the KV cache (and in the original system, weights) in
//! host memory and *pipelines* inference, streaming each layer's data over PCIe into one
//! buffer while the GPU computes the previous layer out of the other. The schedule is
//! **static**: every request's KV is host-resident by construction, the split never
//! adapts to load, and there is no GPU-only fallback.
//!
//! Mapped onto this workspace's engine abstraction, PIPO is a [`SchedulerPolicy`] that
//! emits [`ExecutionMode::Streamed`] decisions: decode attention runs on the **GPU** over
//! KV streamed in layer by layer, costed by `neo_core::pipeline::estimate_streamed` with
//! the double-buffered transfer-overlap terms from [`neo_sim::transfer`]. While contexts
//! are short the stream hides behind compute and PIPO tracks the GPU-only baseline
//! despite holding no KV on the GPU; as contexts grow the pipeline becomes
//! transfer-bound (the PCIe link must re-carry the whole KV cache every iteration) and
//! throughput decays — the contrast with NEO, which moves only Q/K/V/O activations for
//! its offloaded requests, is the point of the fig8c offload-family comparison.

use neo_core::policy::{IterationPlan, SchedulerPolicy};
use neo_core::scheduler::ScheduleContext;
use neo_core::ExecutionMode;

use crate::common::{admit_prefills_to_cpu, collect_full_offload_decodes};

/// The PIPO scheduler: all KV host-resident, decode attention on the GPU over a
/// double-buffered layer-by-layer KV stream.
#[derive(Debug, Clone, Default)]
pub struct PipoScheduler {
    iterations: u64,
}

impl PipoScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of schedules produced so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

impl SchedulerPolicy for PipoScheduler {
    fn policy_name(&self) -> &'static str {
        "pipo"
    }

    /// Static batch formation: every decode request is host-resident (GPU strays are
    /// evicted, as in FastDecode+) and all of them are streamed every iteration — no
    /// balancing, no fallback, no adaptation.
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        self.iterations += 1;
        plan.mode = ExecutionMode::Streamed;
        let decodes = collect_full_offload_decodes(ctx, plan, ctx.config.max_batch_seqs);
        plan.batch0.cpu_decodes = decodes;
    }

    /// Prefills compute on the GPU but their KV streams straight back to the host — the
    /// GPU never holds cached state between iterations.
    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        admit_prefills_to_cpu(ctx, plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::config::EngineConfig;
    use neo_core::engine::Engine;
    use neo_core::request::Request;
    use neo_core::Scheduler;
    use neo_kvcache::Device;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(PipoScheduler::new()))
    }

    #[test]
    fn kv_lives_on_the_host_and_requests_finish() {
        let mut e = engine();
        for id in 0..8 {
            e.submit(Request::new(id, 0.0, 400, 30)).unwrap();
        }
        for _ in 0..6 {
            e.step();
        }
        assert_eq!(e.kv().sequences_on(Device::Gpu).len(), 0, "PIPO keeps no KV on the GPU");
        assert!(!e.kv().sequences_on(Device::Cpu).is_empty());
        e.run_to_completion(200_000);
        assert_eq!(e.completed().len(), 8);
    }

    #[test]
    fn decisions_are_streamed_mode() {
        let mut e = engine();
        e.submit(Request::new(1, 0.0, 300, 20)).unwrap();
        let mut saw_streamed = false;
        while !e.is_idle() {
            let r = e.step();
            if !r.idle {
                assert_eq!(r.mode, ExecutionMode::Streamed);
                saw_streamed = true;
            }
        }
        assert!(saw_streamed);
    }

    #[test]
    fn name_and_iterations_are_reported() {
        let mut e = engine();
        assert_eq!(e.scheduler_name(), "pipo");
        e.submit(Request::new(1, 0.0, 100, 5)).unwrap();
        e.run_to_completion(10_000);
        assert_eq!(e.completed().len(), 1);
        assert_eq!(Scheduler::name(&PipoScheduler::new()), "pipo");
    }

    #[test]
    fn long_contexts_make_the_pipeline_transfer_bound() {
        // Decode iteration time must grow markedly with context length: the PCIe link
        // re-carries the whole (batch) KV cache every iteration, so a 10x larger context
        // pushes the double-buffered pipeline deep into the transfer-bound regime.
        let decode_iter_time = |ctx_len: usize| {
            let mut e = engine();
            for id in 0..16 {
                e.submit(Request::new(id, 0.0, ctx_len, 30)).unwrap();
            }
            let (mut total, mut n) = (0.0, 0u32);
            while !e.is_idle() {
                let r = e.step();
                // Average only pure decode iterations (prefill chunks would skew it).
                if !r.idle && r.prefill_tokens == 0 && r.decode_tokens > 0 {
                    total += r.duration;
                    n += 1;
                }
            }
            assert_eq!(e.completed().len(), 16);
            total / n.max(1) as f64
        };
        let short = decode_iter_time(200);
        let long = decode_iter_time(2000);
        assert!(
            long > short * 3.0,
            "streamed decode should be transfer-bound at long contexts: {short} vs {long}"
        );
    }
}
