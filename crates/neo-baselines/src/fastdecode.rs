//! FastDecode+ — full CPU offloading of decode attention.
//!
//! The paper re-implements FastDecode on top of NEO's runtime ("FastDecode+"): it keeps the
//! asymmetric pipelining machinery but offloads **all** requests' decoding attention and KV
//! cache to the host CPU, with no partial offload and no GPU-only fallback. When outputs
//! grow long the CPU becomes the bottleneck and throughput drops below the GPU-only
//! baseline (Figure 8b); when the prefill waitqueue is empty it has no choice but to run
//! CPU-bound batches, hurting latency (Figure 8a).

use neo_core::policy::{IterationPlan, SchedulerPolicy};
use neo_core::scheduler::ScheduleContext;
use neo_core::ExecutionMode;

use crate::common::{admit_prefills_to_cpu, collect_full_offload_decodes};

/// The FastDecode+ scheduler: every decode request is a CPU-request.
#[derive(Debug, Clone, Default)]
pub struct FastDecodePlusScheduler;

impl FastDecodePlusScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl SchedulerPolicy for FastDecodePlusScheduler {
    fn policy_name(&self) -> &'static str {
        "fastdecode+"
    }

    /// All decode attention runs on the CPU: any request that somehow lives on the GPU is
    /// evicted (FastDecode keeps all KV on the host), and every CPU-resident request
    /// decodes every iteration — no balancing, no fallback. All of batch-1: the CPU
    /// attention overlaps with whatever prefill work batch-0 carries.
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        plan.mode = ExecutionMode::Asymmetric;
        let decodes = collect_full_offload_decodes(ctx, plan, ctx.config.max_batch_seqs);
        plan.batch1.cpu_decodes = decodes;
    }

    /// Prefills run on the GPU but their KV is always swapped out to the CPU cache.
    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        admit_prefills_to_cpu(ctx, plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::config::EngineConfig;
    use neo_core::engine::Engine;
    use neo_core::request::Request;
    use neo_core::Scheduler;
    use neo_kvcache::Device;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(FastDecodePlusScheduler::new()))
    }

    #[test]
    fn all_decode_attention_runs_on_the_cpu() {
        let mut e = engine();
        for id in 0..10 {
            e.submit(Request::new(id, 0.0, 300, 20)).unwrap();
        }
        let mut gpu_decode_seen = false;
        let mut cpu_decode_seen = false;
        while !e.is_idle() {
            let r = e.step();
            if r.decode_tokens > 0 && r.cpu_offloaded == 0 && r.prefill_tokens == 0 {
                gpu_decode_seen = true;
            }
            if r.cpu_offloaded > 0 {
                cpu_decode_seen = true;
            }
        }
        assert_eq!(e.completed().len(), 10);
        assert!(cpu_decode_seen, "FastDecode+ must offload decode attention");
        assert!(!gpu_decode_seen, "FastDecode+ must never run pure GPU decode batches");
    }

    #[test]
    fn kv_cache_lives_on_the_cpu() {
        let mut e = engine();
        e.submit(Request::new(1, 0.0, 600, 50)).unwrap();
        // Run a handful of iterations, then check residency.
        for _ in 0..5 {
            e.step();
        }
        assert_eq!(e.kv().sequences_on(Device::Gpu).len(), 0);
        assert_eq!(e.kv().sequences_on(Device::Cpu).len(), 1);
        e.run_to_completion(100_000);
        assert_eq!(e.completed().len(), 1);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(FastDecodePlusScheduler::new().name(), "fastdecode+");
    }
}
