//! FastDecode+ — full CPU offloading of decode attention.
//!
//! The paper re-implements FastDecode on top of NEO's runtime ("FastDecode+"): it keeps the
//! asymmetric pipelining machinery but offloads **all** requests' decoding attention and KV
//! cache to the host CPU, with no partial offload and no GPU-only fallback. When outputs
//! grow long the CPU becomes the bottleneck and throughput drops below the GPU-only
//! baseline (Figure 8b); when the prefill waitqueue is empty it has no choice but to run
//! CPU-bound batches, hurting latency (Figure 8a).

use neo_core::batch::{PrefillItem, ScheduleDecision, SubBatch};
use neo_core::scheduler::{ScheduleContext, Scheduler};
use neo_core::ExecutionMode;
use neo_kvcache::Device;

/// The FastDecode+ scheduler: every decode request is a CPU-request.
#[derive(Debug, Clone, Default)]
pub struct FastDecodePlusScheduler;

impl FastDecodePlusScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for FastDecodePlusScheduler {
    fn schedule(&mut self, ctx: &ScheduleContext<'_>) -> ScheduleDecision {
        let cfg = ctx.config;
        let mut batch0 = SubBatch::new();
        let mut batch1 = SubBatch::new();
        let mut swap_out = Vec::new();
        let mut cpu_free = ctx.cpu_free_tokens as i64;

        // Any request that somehow lives on the GPU is evicted: FastDecode keeps all KV on
        // the host.
        for &id in ctx.gpu_run {
            let c = ctx.context_len(id);
            if cpu_free >= (c + 1) as i64 {
                swap_out.push(id);
                cpu_free -= (c + 1) as i64;
                batch1.cpu_decodes.push((id, c));
            }
        }

        // All CPU-resident requests decode every iteration (no balancing, no fallback).
        for &id in ctx.cpu_run {
            if batch1.sequences() >= cfg.max_batch_seqs {
                break;
            }
            if cpu_free <= 0 {
                break;
            }
            batch1.cpu_decodes.push((id, ctx.context_len(id)));
            cpu_free -= 1;
        }

        // Prefills run on the GPU (prefill is compute-bound and stays there), but the
        // generated KV is always swapped out to the CPU cache.
        let mut token_budget = cfg.max_batch_tokens;
        for &id in ctx.waiting {
            if token_budget == 0 || batch0.sequences() >= cfg.max_batch_seqs {
                break;
            }
            let remaining = ctx.remaining_prefill(id);
            if remaining == 0 {
                continue;
            }
            let chunk = remaining.min(token_budget).min(cfg.prefill_chunk.max(1));
            if cpu_free < chunk as i64 {
                break;
            }
            let already = ctx.requests[&id].prefilled;
            batch0.prefills.push(PrefillItem {
                req: id,
                new_tokens: chunk,
                ctx_after: already + chunk,
                target: Device::Cpu,
            });
            cpu_free -= chunk as i64;
            token_budget -= chunk;
        }

        let decision = ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0,
            batch1,
            swap_out,
            swap_in: Vec::new(),
            preempt: Vec::new(),
        };
        if decision.is_idle() {
            ScheduleDecision::idle()
        } else {
            decision
        }
    }

    fn name(&self) -> &'static str {
        "fastdecode+"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::config::EngineConfig;
    use neo_core::engine::Engine;
    use neo_core::request::Request;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(FastDecodePlusScheduler::new()))
    }

    #[test]
    fn all_decode_attention_runs_on_the_cpu() {
        let mut e = engine();
        for id in 0..10 {
            e.submit(Request::new(id, 0.0, 300, 20));
        }
        let mut gpu_decode_seen = false;
        let mut cpu_decode_seen = false;
        while !e.is_idle() {
            let r = e.step();
            if r.decode_tokens > 0 && r.cpu_offloaded == 0 && r.prefill_tokens == 0 {
                gpu_decode_seen = true;
            }
            if r.cpu_offloaded > 0 {
                cpu_decode_seen = true;
            }
        }
        assert_eq!(e.completed().len(), 10);
        assert!(cpu_decode_seen, "FastDecode+ must offload decode attention");
        assert!(!gpu_decode_seen, "FastDecode+ must never run pure GPU decode batches");
    }

    #[test]
    fn kv_cache_lives_on_the_cpu() {
        let mut e = engine();
        e.submit(Request::new(1, 0.0, 600, 50));
        // Run a handful of iterations, then check residency.
        for _ in 0..5 {
            e.step();
        }
        assert_eq!(e.kv().sequences_on(Device::Gpu).len(), 0);
        assert_eq!(e.kv().sequences_on(Device::Cpu).len(), 1);
        e.run_to_completion(100_000);
        assert_eq!(e.completed().len(), 1);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(FastDecodePlusScheduler::new().name(), "fastdecode+");
    }
}
