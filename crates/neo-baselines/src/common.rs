//! Batch-formation and admission mechanics shared by the full-offload baselines
//! (FastDecode+, the strawmen, PIPO). Each policy distributes the collected decodes
//! over the sub-batches differently, but the eviction/admission bookkeeping is one
//! rule: all KV belongs on the host.

use neo_core::policy::IterationPlan;
use neo_core::scheduler::ScheduleContext;
use neo_kvcache::Device;

/// Evicts GPU strays to the host cache (full-offload policies keep no KV on the GPU)
/// and schedules every CPU-resident decode, up to `max_seqs` in total. Returns the
/// decodes for the caller to place — each baseline spreads them over the sub-batches
/// differently (batch-1 for FastDecode+, batch-0 for SimpleOffload/PIPO, an even split
/// for SymmetricPipeline).
pub(crate) fn collect_full_offload_decodes(
    ctx: &ScheduleContext<'_>,
    plan: &mut IterationPlan,
    max_seqs: usize,
) -> Vec<(u64, usize)> {
    let mut decodes = Vec::new();
    for &id in ctx.gpu_run {
        let c = ctx.context_len(id);
        if plan.cpu_free >= (c + 1) as i64 {
            plan.swap_out.push(id);
            plan.cpu_free -= (c + 1) as i64;
            decodes.push((id, c));
        }
    }
    for &id in ctx.cpu_run {
        if decodes.len() >= max_seqs || plan.cpu_free <= 0 {
            break;
        }
        decodes.push((id, ctx.context_len(id)));
        plan.cpu_free -= 1;
    }
    decodes
}

/// Shared admission phase of the full-offload baselines: prefills compute on the GPU
/// (prefill is compute-bound and stays there), but the generated KV always lands in the
/// CPU cache.
pub(crate) fn admit_prefills_to_cpu(ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
    plan.admit_prefills(ctx, |plan, _id, chunk| {
        (plan.cpu_free >= chunk as i64).then_some(Device::Cpu)
    });
}
