//! SpecOffload — speculative batch expansion that claims latent GPU capacity.
//!
//! SpecOffload (Zhuge et al., 2025 — see `PAPERS.md`) observes that offloading engines
//! leave GPU capacity latent — memory headroom and pipeline bubbles — and claims it
//! *speculatively*: extra work is scheduled optimistically, and when the speculation
//! overshoots what the hardware can absorb, the overshoot is rolled back at a cost.
//!
//! Mapped onto this workspace's engine abstraction, [`SpecOffloadScheduler`] serves
//! GPU-first (decodes on the GPU, swap-out only under memory pressure) and then, each
//! iteration, speculatively expands the batch with up to `spec_width` CPU-resident
//! decodes **without** checking NEO's balancing inequalities — the claim that their CPU
//! attention will hide in the pipeline's shadow is the speculation. The profiled cost
//! model then judges the claim:
//!
//! * **Hit** — the expanded schedule still satisfies the balance inequalities: the latent
//!   capacity was real, and `spec_width` grows additively to probe for more.
//! * **Mis-speculation** — the expansion overshot: the iteration executes anyway and its
//!   exposed CPU time is the rollback cost, paid in real simulated time, after which
//!   `spec_width` halves (AIMD, like congestion control).
//!
//! The result probes up to NEO's balanced operating point from below without ever
//! solving for it, trading occasional mis-speculated (slow) iterations for scheduling
//! simplicity — visible in the fig8c offload-family comparison as throughput slightly
//! below NEO's with the same general shape.

use neo_core::batch::ScheduleDecision;
use neo_core::pipeline::balanced;
use neo_core::policy::{IterationPlan, SchedulerPolicy};
use neo_core::scheduler::ScheduleContext;
use neo_core::ExecutionMode;
use neo_kvcache::Device;

/// Additive increase applied to the speculation width after a hit.
const SPEC_INCREASE: usize = 2;

/// The SpecOffload scheduler: optimistic batch expansion with AIMD width control.
#[derive(Debug, Clone)]
pub struct SpecOffloadScheduler {
    spec_width: usize,
    speculations: u64,
    rollbacks: u64,
}

impl Default for SpecOffloadScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl SpecOffloadScheduler {
    /// Creates the scheduler with the default initial speculation width.
    pub fn new() -> Self {
        Self::with_spec_width(4)
    }

    /// Creates the scheduler with an explicit initial speculation width (clamped to ≥ 1).
    pub fn with_spec_width(width: usize) -> Self {
        Self { spec_width: width.max(1), speculations: 0, rollbacks: 0 }
    }

    /// Current speculation width (CPU decodes claimed optimistically per iteration).
    pub fn spec_width(&self) -> usize {
        self.spec_width
    }

    /// Iterations in which extra decodes were claimed speculatively.
    pub fn speculations(&self) -> u64 {
        self.speculations
    }

    /// Mis-speculations so far (claims the balance check rejected after the fact).
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }
}

impl SchedulerPolicy for SpecOffloadScheduler {
    fn policy_name(&self) -> &'static str {
        "specoffload"
    }

    /// GPU-first batch formation — [`IterationPlan::form_gpu_first_batches`], the same
    /// mechanics NEO uses: GPU-resident decodes stay on the GPU; under memory pressure
    /// the longest contexts are swapped out (or preempted when the CPU cache is full
    /// too), and idle GPU memory pulls CPU-residents back in — idle *memory* is latent
    /// capacity just like idle compute.
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        plan.form_gpu_first_batches(ctx);
    }

    /// Prefill admission mirrors NEO's: keep KV on the GPU while it fits, spill the rest
    /// to the host cache.
    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        plan.admit_prefills(ctx, |plan, _id, chunk| {
            if plan.gpu_free >= chunk as i64 {
                Some(Device::Gpu)
            } else if plan.cpu_free >= chunk as i64 {
                Some(Device::Cpu)
            } else {
                None
            }
        });
    }

    /// The speculation: claim up to `spec_width` CPU-resident decodes into batch-1
    /// without consulting the balance inequalities, then let the profiled cost model
    /// judge the claim after the fact and adapt the width (AIMD).
    fn split_offload(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        let cfg = ctx.config;
        let mut candidates: Vec<(u64, usize)> = ctx
            .cpu_run
            .iter()
            .filter(|id| !plan.swap_in.contains(id))
            .map(|&id| (id, ctx.context_len(id)))
            .collect();
        candidates.extend(plan.swap_out.iter().map(|&id| (id, ctx.context_len(id))));
        candidates.sort_by_key(|&(_, c)| c);

        // No GPU work at all to hide behind: run the CPU-residents as a plain CPU batch
        // (there is no latent capacity to speculate on, only idle hardware).
        if plan.batch0.is_empty() {
            for (id, c) in candidates {
                if plan.batch1.sequences() >= cfg.max_batch_seqs {
                    break;
                }
                plan.batch1.cpu_decodes.push((id, c));
            }
            return;
        }

        if candidates.is_empty() {
            return;
        }
        self.speculations += 1;
        for (id, c) in candidates.into_iter().take(self.spec_width) {
            if plan.batch1.sequences() >= cfg.max_batch_seqs {
                break;
            }
            plan.batch1.cpu_decodes.push((id, c));
        }

        // Judge the claim by the same balance rule NEO schedules with: do the
        // inequalities still hold for the expansion?
        let hidden = balanced(ctx.cost, &plan.batch0, &plan.batch1, cfg.balance_slack);
        if hidden {
            // Hit: the latent capacity was real — probe for more next iteration.
            self.spec_width = (self.spec_width + SPEC_INCREASE).min(cfg.max_batch_seqs);
        } else {
            // Mis-speculation: the over-expanded iteration executes anyway (its exposed
            // CPU time is the rollback cost); back off multiplicatively.
            self.rollbacks += 1;
            self.spec_width = (self.spec_width / 2).max(1);
        }
    }

    /// Asymmetric whenever the speculation claimed CPU work, GPU-only otherwise.
    fn select_mode(
        &mut self,
        _ctx: &ScheduleContext<'_>,
        mut plan: IterationPlan,
    ) -> ScheduleDecision {
        let has_cpu_work =
            !plan.batch0.cpu_decodes.is_empty() || !plan.batch1.cpu_decodes.is_empty();
        plan.mode = if has_cpu_work { ExecutionMode::Asymmetric } else { ExecutionMode::GpuOnly };
        plan.into_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::config::EngineConfig;
    use neo_core::engine::Engine;
    use neo_core::request::Request;
    use neo_core::Scheduler;
    use neo_sim::{CostModel, ModelDesc, Testbed};
    use std::collections::BTreeMap;

    fn engine(testbed: Testbed, model: ModelDesc) -> Engine {
        let cost = CostModel::new(model, testbed, 1);
        Engine::new(cost, EngineConfig::default(), Box::new(SpecOffloadScheduler::new()))
    }

    /// Hand-built scheduling context for driving the policy directly, so the AIMD
    /// counters stay observable.
    struct Fixture {
        requests: BTreeMap<u64, Request>,
        waiting: Vec<u64>,
        gpu_run: Vec<u64>,
        cpu_run: Vec<u64>,
        prefill_device: BTreeMap<u64, Device>,
        config: EngineConfig,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                requests: BTreeMap::new(),
                waiting: vec![],
                gpu_run: vec![],
                cpu_run: vec![],
                prefill_device: BTreeMap::new(),
                config: EngineConfig::default(),
            }
        }

        fn add_running(&mut self, id: u64, ctx_len: usize, device: Device) {
            let mut r = Request::new(id, 0.0, ctx_len.max(1), 64);
            r.advance_prefill(r.prompt_len);
            self.requests.insert(id, r);
            match device {
                Device::Gpu => self.gpu_run.push(id),
                Device::Cpu => self.cpu_run.push(id),
                Device::Disk => unreachable!("tests place requests on GPU or CPU"),
            }
        }

        fn schedule(&self, cost: &CostModel, s: &mut SpecOffloadScheduler) -> ScheduleDecision {
            let ctx = ScheduleContext {
                cost,
                config: &self.config,
                requests: &self.requests,
                waiting: &self.waiting,
                gpu_run: &self.gpu_run,
                cpu_run: &self.cpu_run,
                disk_run: &[],
                // Small enough that the swap-in watermark never pulls the CPU-resident
                // candidates back to the GPU, so the speculation path stays exercised.
                gpu_free_tokens: 100,
                cpu_free_tokens: 400_000,
                disk_free_tokens: 0,
                gpu_capacity_tokens: 100,
                prefill_device: &self.prefill_device,
                admission_backlog: 0,
            };
            s.schedule(&ctx)
        }
    }

    fn cost() -> CostModel {
        CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
    }

    #[test]
    fn completes_workloads_and_reports_name() {
        let mut e = engine(Testbed::g5_xlarge(4), ModelDesc::llama3_8b());
        assert_eq!(e.scheduler_name(), "specoffload");
        for id in 0..16 {
            e.submit(Request::new(id, 0.0, 300, 24)).unwrap();
        }
        e.run_to_completion(200_000);
        assert_eq!(e.completed().len(), 16);
        assert_eq!(Scheduler::name(&SpecOffloadScheduler::new()), "specoffload");
    }

    #[test]
    fn speculation_claims_cpu_decodes_under_memory_pressure() {
        // On the memory-starved T4 the swapped-out population is the latent capacity the
        // speculation claims: offloaded decode iterations must appear.
        let mut e = engine(Testbed::g4dn_4xlarge(), ModelDesc::llama2_7b());
        for id in 0..48 {
            e.submit(Request::new(id, 0.0, 250, 40)).unwrap();
        }
        let mut offloaded_iterations = 0;
        while !e.is_idle() {
            let r = e.step();
            if r.cpu_offloaded > 0 {
                offloaded_iterations += 1;
            }
        }
        assert_eq!(e.completed().len(), 48);
        assert!(offloaded_iterations > 0, "speculation never claimed CPU-resident decodes");
    }

    #[test]
    fn hits_grow_the_speculation_width() {
        // A fat GPU batch whose linear stage easily hides a couple of small CPU decodes:
        // every speculation is a hit, so the width ratchets up additively.
        let mut fx = Fixture::new();
        for id in 0..40 {
            fx.add_running(id, 800, Device::Gpu);
        }
        for id in 100..104 {
            fx.add_running(id, 200, Device::Cpu);
        }
        let cm = cost();
        let mut s = SpecOffloadScheduler::with_spec_width(2);
        let d = fx.schedule(&cm, &mut s);
        assert!(!d.batch1.cpu_decodes.is_empty(), "speculation must claim CPU decodes");
        assert_eq!(s.speculations(), 1);
        assert_eq!(s.rollbacks(), 0);
        assert_eq!(s.spec_width(), 2 + SPEC_INCREASE);
        let _ = fx.schedule(&cm, &mut s);
        assert_eq!(s.spec_width(), 2 + 2 * SPEC_INCREASE);
    }

    #[test]
    fn misses_halve_the_speculation_width() {
        // A thin GPU batch cannot hide dozens of long-context CPU decodes: the optimistic
        // claim overshoots, the decision still carries it (the rollback cost is paid in
        // execution), and the width halves.
        let mut fx = Fixture::new();
        fx.add_running(0, 100, Device::Gpu);
        for id in 100..164 {
            fx.add_running(id, 4000, Device::Cpu);
        }
        let cm = cost();
        let mut s = SpecOffloadScheduler::with_spec_width(64);
        let d = fx.schedule(&cm, &mut s);
        assert_eq!(s.rollbacks(), 1);
        assert_eq!(s.spec_width(), 32);
        assert_eq!(d.batch1.cpu_decodes.len(), 64, "mis-speculated work still executes");
        assert_eq!(d.mode, ExecutionMode::Asymmetric);
    }

    #[test]
    fn no_gpu_work_means_plain_cpu_batch_not_speculation() {
        let mut fx = Fixture::new();
        for id in 0..6 {
            fx.add_running(id, 500, Device::Cpu);
        }
        let cm = cost();
        let mut s = SpecOffloadScheduler::new();
        let d = fx.schedule(&cm, &mut s);
        assert_eq!(s.speculations(), 0);
        assert_eq!(d.batch1.cpu_decodes.len(), 6);
        assert!(d.batch0.is_empty());
    }

    #[test]
    fn width_floor_is_one() {
        assert_eq!(SpecOffloadScheduler::with_spec_width(0).spec_width(), 1);
    }
}
