//! GPU-only baselines (vLLM-like and SwiftLLM-like).
//!
//! These schedulers never use the CPU cache: decode requests live on the GPU, prompts are
//! admitted (optionally in chunks, like vLLM's `--enable-chunked-prefill`) while GPU KV
//! memory and the token budget allow, and requests that cannot fit simply wait. This is
//! the "GPU-only" baseline every figure of the paper normalises against.

use neo_core::batch::PrefillItem;
use neo_core::policy::{IterationPlan, SchedulerPolicy};
use neo_core::scheduler::ScheduleContext;
use neo_kvcache::Device;

/// A GPU-only iteration-level scheduler.
#[derive(Debug, Clone)]
pub struct GpuOnlyScheduler {
    name: &'static str,
    chunked_prefill: bool,
}

impl GpuOnlyScheduler {
    /// vLLM-like configuration: chunked prefill enabled (the paper passes
    /// `--enable-chunked-prefill` to vLLM to get selective batching).
    pub fn vllm_like() -> Self {
        Self { name: "vllm-like", chunked_prefill: true }
    }

    /// SwiftLLM-like configuration: selective batching with whole-prompt admission, the
    /// baseline NEO is built on (and the baseline of Figures 8b, 9 and 10a).
    pub fn swiftllm_like() -> Self {
        Self { name: "swiftllm-like", chunked_prefill: false }
    }

    /// Whether chunked prefill is enabled.
    pub fn chunked_prefill(&self) -> bool {
        self.chunked_prefill
    }
}

impl SchedulerPolicy for GpuOnlyScheduler {
    fn policy_name(&self) -> &'static str {
        self.name
    }

    /// Every GPU-resident request needs one new KV slot this iteration. If the GPU pool
    /// cannot supply them, preempt the most recently arrived requests (free their KV and
    /// recompute later), exactly like vLLM's recompute-mode preemption. GPU-only policies
    /// never swap: the CPU cache does not exist for them.
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        let cfg = ctx.config;
        let mut decodes: Vec<(u64, usize)> =
            ctx.gpu_run.iter().map(|&id| (id, ctx.context_len(id))).collect();
        // Earliest-arrival first, so victims are taken from the back (latest arrivals).
        decodes.sort_by(|a, b| {
            let ta = ctx.requests[&a.0].arrival_time;
            let tb = ctx.requests[&b.0].arrival_time;
            ta.total_cmp(&tb)
        });
        while decodes.len() as i64 > plan.gpu_free && decodes.len() > 1 {
            let (victim, ctx_len) = decodes.pop().expect("non-empty");
            plan.preempt.push(victim);
            plan.gpu_free += ctx_len as i64;
        }
        for (id, c) in decodes {
            if plan.gpu_free <= 0 || plan.batch0.sequences() >= cfg.max_batch_seqs {
                break;
            }
            plan.batch0.gpu_decodes.push((id, c));
            plan.gpu_free -= 1;
        }
    }

    /// Admit prefills while the token budget and GPU memory allow. This loop is bespoke
    /// (not [`IterationPlan::admit_prefills`]) because SwiftLLM-like whole-prompt
    /// admission blocks the head of the line when the remaining budget cannot take a full
    /// prompt.
    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        let cfg = ctx.config;
        let mut token_budget = plan.token_budget(ctx);
        for &id in ctx.waiting {
            if token_budget == 0 || plan.batch0.sequences() >= cfg.max_batch_seqs {
                break;
            }
            let remaining = ctx.remaining_prefill(id);
            if remaining == 0 {
                continue;
            }
            let chunk_cap = if self.chunked_prefill { cfg.prefill_chunk.max(1) } else { remaining };
            let chunk = remaining.min(token_budget).min(chunk_cap);
            if !self.chunked_prefill && chunk < remaining && remaining <= cfg.max_batch_tokens {
                // Whole-prompt admission: if the remainder of the budget cannot take the
                // full prompt, stop admitting (head-of-line blocking, like SwiftLLM).
                // Prompts longer than the whole budget are necessarily chunked.
                break;
            }
            if plan.gpu_free < chunk as i64 {
                break;
            }
            let already = ctx.requests[&id].prefilled;
            plan.batch0.prefills.push(PrefillItem {
                req: id,
                new_tokens: chunk,
                ctx_after: already + chunk,
                target: Device::Gpu,
            });
            plan.gpu_free -= chunk as i64;
            token_budget -= chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_core::config::EngineConfig;
    use neo_core::engine::Engine;
    use neo_core::request::Request;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn engine(scheduler: GpuOnlyScheduler) -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(scheduler))
    }

    #[test]
    fn vllm_like_completes_requests_without_cpu_use() {
        let mut e = engine(GpuOnlyScheduler::vllm_like());
        for id in 0..20 {
            e.submit(Request::new(id, 0.0, 400, 20)).unwrap();
        }
        let mut offloaded = 0;
        while !e.is_idle() {
            let r = e.step();
            offloaded += r.cpu_offloaded + r.swapped_out;
        }
        assert_eq!(e.completed().len(), 20);
        assert_eq!(offloaded, 0, "GPU-only baseline must never offload");
    }

    #[test]
    fn swiftllm_like_admits_whole_prompts() {
        let mut e = engine(GpuOnlyScheduler::swiftllm_like());
        e.submit(Request::new(1, 0.0, 1500, 4)).unwrap();
        let report = e.step();
        // Whole prompt in one go (fits the 2048-token default budget).
        assert_eq!(report.prefill_tokens, 1500);
        assert_eq!(e.scheduler_name(), "swiftllm-like");
    }

    #[test]
    fn vllm_like_chunks_long_prompts() {
        let mut e = engine(GpuOnlyScheduler::vllm_like());
        e.submit(Request::new(1, 0.0, 1500, 4)).unwrap();
        let report = e.step();
        assert_eq!(report.prefill_tokens, EngineConfig::default().prefill_chunk);
    }

    #[test]
    fn memory_pressure_stalls_rather_than_offloads() {
        let cost = CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1);
        let mut e =
            Engine::new(cost, EngineConfig::default(), Box::new(GpuOnlyScheduler::vllm_like()));
        for id in 0..64 {
            e.submit(Request::new(id, 0.0, 300, 30)).unwrap();
        }
        e.run_to_completion(500_000);
        assert_eq!(e.completed().len(), 64, "requests must eventually finish by waiting");
        // The T4 cannot hold all 64 requests at once, so the achieved batch sizes are
        // small — this is exactly why the paper's Figure 6c shows vLLM collapsing on T4.
        let kv = e.kv();
        assert_eq!(kv.sequences_on(Device::Cpu).len(), 0);
    }
}
