//! Baseline scheduling policies the paper compares NEO against.
//!
//! Every baseline implements the [`neo_core::SchedulerPolicy`] trait — the same
//! phase-decomposed policy seam `neo_core::NeoScheduler` is written against — and
//! therefore runs inside the exact same engine as NEO, so performance differences come
//! from policy alone:
//!
//! * [`gpu_only::GpuOnlyScheduler`] — vLLM-like / SwiftLLM-like GPU-only serving with
//!   iteration-level scheduling, paged KV and (optionally) chunked prefill. Never touches
//!   the CPU cache.
//! * [`fastdecode::FastDecodePlusScheduler`] — the paper's "FastDecode+": NEO's pipelining
//!   runtime but with *all* decode attention and KV offloaded to the CPU, no partial
//!   offload and no GPU-only fallback.
//! * [`strawmen::SimpleOffloadScheduler`] — strawman #1 (§3.1): full offload with no
//!   GPU/CPU overlap (the CPU attention sits serially after the GPU linear stage).
//! * [`strawmen::SymmetricPipelineScheduler`] — strawman #2 (§3.1): full offload with two
//!   *identical* decode sub-batches overlapped, prefill unintegrated.
//! * [`pipo::PipoScheduler`] — PIPO-style static pipelined offloading: all KV
//!   host-resident, decode attention on the GPU over a layer-by-layer KV stream
//!   double-buffered with compute (`neo_sim::transfer`).
//! * [`specoffload::SpecOffloadScheduler`] — SpecOffload-style speculative batch
//!   expansion: extra CPU-resident decodes are claimed optimistically to fill latent GPU
//!   capacity, with AIMD width control and mis-speculations paid as exposed CPU time.
//!
//! Per-baseline assumptions, cost-model terms and citations are catalogued in
//! `docs/BASELINES.md` at the repository root.
//!
//! # Example: constructing a policy and driving the engine
//!
//! Every policy plugs into [`neo_core::Engine`] through `Box<dyn Scheduler>`; nothing
//! about the engine changes between baselines:
//!
//! ```
//! use neo_baselines::PipoScheduler;
//! use neo_core::{Engine, EngineConfig, Request};
//! use neo_sim::{CostModel, ModelDesc, Testbed};
//!
//! let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
//! let mut engine = Engine::new(cost, EngineConfig::default(), Box::new(PipoScheduler::new()));
//! engine.submit(Request::new(0, 0.0, 256, 16));
//! engine.run_to_completion(100_000);
//! assert_eq!(engine.completed().len(), 1);
//! assert_eq!(engine.scheduler_name(), "pipo");
//! ```
//!
//! # Example: comparing two policies on the same workload
//!
//! Because the engine is shared, a comparison is two runs that differ only in the boxed
//! policy:
//!
//! ```
//! use neo_baselines::{GpuOnlyScheduler, SpecOffloadScheduler};
//! use neo_core::{Engine, EngineConfig, Request, Scheduler};
//! use neo_sim::{CostModel, ModelDesc, Testbed};
//!
//! let run = |sched: Box<dyn Scheduler>| {
//!     let cost = CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1);
//!     let mut engine = Engine::new(cost, EngineConfig::default(), sched);
//!     for id in 0..12 {
//!         engine.submit(Request::new(id, 0.0, 200, 16));
//!     }
//!     engine.run_to_completion(400_000);
//!     assert_eq!(engine.completed().len(), 12);
//!     engine.now() // makespan: lower is better
//! };
//! let gpu_only = run(Box::new(GpuOnlyScheduler::vllm_like()));
//! let spec = run(Box::new(SpecOffloadScheduler::new()));
//! assert!(gpu_only > 0.0 && spec > 0.0);
//! ```

#![forbid(unsafe_code)]

mod common;
pub mod fastdecode;
pub mod gpu_only;
pub mod pipo;
pub mod specoffload;
pub mod strawmen;

pub use fastdecode::FastDecodePlusScheduler;
pub use gpu_only::GpuOnlyScheduler;
pub use pipo::PipoScheduler;
pub use specoffload::SpecOffloadScheduler;
pub use strawmen::{SimpleOffloadScheduler, SymmetricPipelineScheduler};
