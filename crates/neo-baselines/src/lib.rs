//! Baseline scheduling policies the paper compares NEO against.
//!
//! Every baseline implements the [`neo_core::Scheduler`] trait and therefore runs inside
//! the exact same engine as NEO, so performance differences come from policy alone:
//!
//! * [`gpu_only::GpuOnlyScheduler`] — vLLM-like / SwiftLLM-like GPU-only serving with
//!   iteration-level scheduling, paged KV and (optionally) chunked prefill. Never touches
//!   the CPU cache.
//! * [`fastdecode::FastDecodePlusScheduler`] — the paper's "FastDecode+": NEO's pipelining
//!   runtime but with *all* decode attention and KV offloaded to the CPU, no partial
//!   offload and no GPU-only fallback.
//! * [`strawmen::SimpleOffloadScheduler`] — strawman #1 (§3.1): full offload with no
//!   GPU/CPU overlap (the CPU attention sits serially after the GPU linear stage).
//! * [`strawmen::SymmetricPipelineScheduler`] — strawman #2 (§3.1): full offload with two
//!   *identical* decode sub-batches overlapped, prefill unintegrated.

pub mod fastdecode;
pub mod gpu_only;
pub mod strawmen;

pub use fastdecode::FastDecodePlusScheduler;
pub use gpu_only::GpuOnlyScheduler;
pub use strawmen::{SimpleOffloadScheduler, SymmetricPipelineScheduler};
