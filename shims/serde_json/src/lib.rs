//! A minimal JSON front-end for the vendored `serde` shim.
//!
//! Provides the three entry points this workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — implemented over the shim's
//! [`Value`] data model with a hand-written printer and recursive-descent
//! parser.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, so the
                // value round-trips back to Float rather than Int.
                out.push_str(&format!("{f:?}"));
            } else {
                // Like real serde_json, non-finite floats become null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), items.len(), ('[', ']'), indent, depth, out, |item, d, o| {
                write_value(item, indent, d, o)
            })
        }
        Value::Object(entries) => write_seq(
            entries.iter(),
            entries.len(),
            ('{', '}'),
            indent,
            depth,
            out,
            |(key, val), d, o| {
                write_string(key, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    (open, close): (char, char),
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(step * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", char::from(byte), self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::custom("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                char::from(other)
                            )));
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let value = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Array(vec![Value::Float(1.5), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        let compact = to_string(&value).unwrap();
        assert_eq!(compact, r#"{"a":3,"b":[1.5,null],"c":"x\"y\n"}"#);
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, value);
        let pretty = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let compact = to_string(&2.0f64).unwrap();
        assert_eq!(compact, "2.0");
        let back: f64 = from_str(&compact).unwrap();
        assert_eq!(back, 2.0);
    }
}
