//! A minimal, API-compatible subset of [`serde`](https://serde.rs).
//!
//! The build environment for this repository has no network access to
//! crates.io, so the handful of external crates the sources depend on are
//! vendored as small shims under `shims/`. This one provides the
//! [`Serialize`]/[`Deserialize`] traits plus their derive macros, backed by a
//! self-describing JSON-like [`Value`] data model instead of serde's visitor
//! architecture. The `serde_json` shim builds its string format on top of it.
//!
//! Only the surface this workspace actually uses is implemented: derives for
//! named-field structs and unit-variant enums, and impls for the primitive,
//! `String`, `Option`, and `Vec` types that appear in those structs.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value: the intermediate representation every
/// [`Serialize`]/[`Deserialize`] impl goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (covers the full `i64`/`u64` ranges losslessly).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved so output is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Prefixes the message with the context of an enclosing field.
    pub fn in_field(self, field: &str) -> Self {
        Self { msg: format!("{field}: {}", self.msg) }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the self-describing data model.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the self-describing data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range"))),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
