//! A minimal, API-compatible subset of [`criterion`](https://bheisler.github.io/criterion.rs/book/).
//!
//! Vendored because the build environment has no crates.io access. Implements
//! the macro and builder surface this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], benchmark groups, throughput
//! annotation, `iter`/`iter_batched`/`iter_batched_ref` — with plain
//! wall-clock timing: each benchmark warms up briefly, then reports the mean
//! and best iteration time (and derived throughput) on stdout. There is no
//! statistical analysis, HTML report, or saved baseline.
//!
//! Two environment variables extend the shim for CI baseline checking (see
//! `shims/README.md` for the contract):
//!
//! * `CRITERION_SAMPLE_SIZE` — overrides the default sample count (30), so CI
//!   can run a quick mode.
//! * `CRITERION_JSON_DIR` — when set, every completed benchmark rewrites
//!   `<dir>/<bench>.json` (bench = executable name minus cargo's trailing
//!   `-<hash>`) with machine-readable per-benchmark estimates:
//!   `{"bench": ..., "threads": ..., "sample_size": ..., "benchmarks":
//!   [{"id", "mean_ns", "median_ns", "best_ns", "stddev_ns", "samples"}]}`. The
//!   `threads` field records [`rayon::current_num_threads`] at emission
//!   time and `sample_size` the effective `CRITERION_SAMPLE_SIZE`, so
//!   baseline checkers can refuse to compare runs whose parallelism or
//!   sampling differ.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

/// The effective default sample count: `CRITERION_SAMPLE_SIZE` if set to a
/// positive integer, else 30. Also recorded in the JSON report metadata.
fn default_sample_size() -> usize {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(30)
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: default_sample_size() }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with input throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self { label: label.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Input volume processed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per timing measurement (ignored by the
/// shim; every iteration gets a fresh input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures; handed to bench functions.
pub struct Bencher {
    /// Mean/best duration of a single iteration, collected per sample.
    samples: Vec<Duration>,
    /// Inner-loop count for [`Bencher::iter`], calibrated on first use so
    /// sub-microsecond routines are not swamped by `Instant::now` overhead.
    iters_per_sample: Option<u32>,
}

/// Minimum wall-clock time one [`Bencher::iter`] sample should span.
const TARGET_SAMPLE_TIME: Duration = Duration::from_micros(50);

impl Bencher {
    /// Times `routine`, looping it enough times per sample that timer
    /// overhead is amortized; the recorded duration is per single call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = *self.iters_per_sample.get_or_insert_with(|| {
            let start = Instant::now();
            black_box(routine());
            let once = start.elapsed().max(Duration::from_nanos(1));
            (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32
        });
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / n);
    }

    /// Times `routine` on a fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }

    /// Like [`Bencher::iter_batched`] but passes the input by mutable
    /// reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher =
        Bencher { samples: Vec::with_capacity(sample_size + 3), iters_per_sample: None };
    // Warm-up: a few untimed calls populate caches and lazy state.
    for _ in 0..3.min(sample_size) {
        f(&mut bencher);
    }
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    // A bench function that never calls an iter method produces no samples.
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let best = bencher.samples.iter().min().copied().unwrap_or_default();
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    // Sample standard deviation (ns): the spread baseline checkers build
    // confidence intervals from. Zero for a single sample.
    let mean_ns = mean.as_nanos() as f64;
    let stddev_ns = if bencher.samples.len() > 1 {
        let sum_sq: f64 = bencher
            .samples
            .iter()
            .map(|s| {
                let d = s.as_nanos() as f64 - mean_ns;
                d * d
            })
            .sum();
        (sum_sq / (bencher.samples.len() - 1) as f64).sqrt()
    } else {
        0.0
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
            format!("  {:>10.2} MiB/s", bytes as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>10.2} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<50} mean {mean:>12.3?}  best {best:>12.3?}{rate}");
    json::record(Estimate {
        id: label.to_owned(),
        mean_ns,
        median_ns: median.as_nanos() as f64,
        best_ns: best.as_nanos() as f64,
        stddev_ns,
        samples: bencher.samples.len(),
    });
}

/// One benchmark's timing estimate, as written to the JSON report.
#[derive(Debug, Clone, PartialEq)]
struct Estimate {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    best_ns: f64,
    stddev_ns: f64,
    samples: usize,
}

/// Machine-readable JSON emission, enabled by the `CRITERION_JSON_DIR`
/// environment variable (read per benchmark, so tests can toggle it).
mod json {
    use super::Estimate;
    use std::sync::Mutex;

    /// Estimates accumulated across every group of the running bench binary.
    static ESTIMATES: Mutex<Vec<Estimate>> = Mutex::new(Vec::new());

    /// Appends one estimate and rewrites the report file, so the file is
    /// complete and valid JSON after every benchmark.
    pub(super) fn record(estimate: Estimate) {
        let Ok(dir) = std::env::var("CRITERION_JSON_DIR") else { return };
        let mut estimates = ESTIMATES.lock().unwrap_or_else(|e| e.into_inner());
        estimates.retain(|e| e.id != estimate.id);
        estimates.push(estimate);
        let bench = bench_name();
        let body = render(&bench, &estimates);
        let dir = std::path::Path::new(&dir);
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("{bench}.json"));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("criterion shim: could not write {}: {e}", path.display());
        }
    }

    /// The bench target's name: the executable file stem minus the trailing
    /// `-<16 hex digit>` disambiguation hash cargo appends.
    fn bench_name() -> String {
        let stem = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "bench".to_owned());
        strip_cargo_hash(&stem)
    }

    pub(super) fn strip_cargo_hash(stem: &str) -> String {
        match stem.rsplit_once('-') {
            Some((name, hash))
                if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
            {
                name.to_owned()
            }
            _ => stem.to_owned(),
        }
    }

    pub(super) fn render(bench: &str, estimates: &[Estimate]) -> String {
        render_with_meta(
            bench,
            rayon::current_num_threads(),
            super::default_sample_size(),
            estimates,
        )
    }

    pub(super) fn render_with_meta(
        bench: &str,
        threads: usize,
        sample_size: usize,
        estimates: &[Estimate],
    ) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
        // Runs are only comparable at matching parallelism and sampling; the
        // baseline checker gates on these.
        out.push_str(&format!("  \"threads\": {threads},\n"));
        out.push_str(&format!("  \"sample_size\": {sample_size},\n"));
        out.push_str("  \"benchmarks\": [\n");
        for (i, e) in estimates.iter().enumerate() {
            let comma = if i + 1 == estimates.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"best_ns\": {:.1}, \"stddev_ns\": {:.1}, \"samples\": {} }}{comma}\n",
                escape(&e.id),
                e.mean_ns,
                e.median_ns,
                e.best_ns,
                e.stddev_ns,
                e.samples
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect()
    }
}

/// Bundles bench functions into one callable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cargo_hash_suffix_is_stripped() {
        assert_eq!(json::strip_cargo_hash("kernels-0123456789abcdef"), "kernels");
        assert_eq!(json::strip_cargo_hash("fig6-load-1a2B3c4D5e6F7a8b"), "fig6-load");
        // Non-hash suffixes and plain names survive untouched.
        assert_eq!(json::strip_cargo_hash("kernels"), "kernels");
        assert_eq!(json::strip_cargo_hash("multi-word-bench"), "multi-word-bench");
        assert_eq!(json::strip_cargo_hash("bench-0123456789abcdeg"), "bench-0123456789abcdeg");
    }

    #[test]
    fn rendered_report_is_stable_json() {
        let estimates = vec![
            Estimate {
                id: "group/case/16".to_owned(),
                mean_ns: 1234.5,
                median_ns: 1200.0,
                best_ns: 1100.25,
                stddev_ns: 45.75,
                samples: 30,
            },
            Estimate {
                id: "with \"quote\"".to_owned(),
                mean_ns: 2.0,
                median_ns: 2.0,
                best_ns: 1.0,
                stddev_ns: 0.0,
                samples: 10,
            },
        ];
        let body = json::render_with_meta("kernels", 4, 10, &estimates);
        assert!(body.starts_with("{\n  \"bench\": \"kernels\",\n"));
        assert!(body.contains("\"threads\": 4,\n"));
        assert!(body.contains("\"sample_size\": 10,\n"));
        assert!(body.contains("\"id\": \"group/case/16\", \"mean_ns\": 1234.5"));
        assert!(body.contains("\"stddev_ns\": 45.8"));
        assert!(body.contains("\\\"quote\\\""));
        assert!(body.contains("\"samples\": 30"));
        assert!(body.trim_end().ends_with('}'));
        // Exactly one trailing comma between the two entries.
        assert_eq!(body.matches("},\n").count(), 1);
    }

    #[test]
    fn render_records_the_ambient_thread_count() {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let body = pool.install(|| json::render("kernels", &[]));
        assert!(body.contains("\"threads\": 3,\n"), "got: {body}");
    }

    #[test]
    fn sample_size_env_override_applies() {
        // The default is read from the environment at construction time.
        std::env::set_var("CRITERION_SAMPLE_SIZE", "7");
        let c = Criterion::default();
        assert_eq!(c.sample_size, 7);
        std::env::set_var("CRITERION_SAMPLE_SIZE", "not-a-number");
        assert_eq!(Criterion::default().sample_size, 30);
        std::env::remove_var("CRITERION_SAMPLE_SIZE");
        assert_eq!(Criterion::default().sample_size, 30);
    }

    #[test]
    fn median_of_samples_lands_between_best_and_worst() {
        // Drive run_benchmark end to end (no JSON dir set): it must not panic and must
        // print estimates; the median logic is covered via the recorded samples.
        let mut calls = 0usize;
        run_benchmark("shim/self_test", 5, None, &mut |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            });
        });
        assert!(calls > 0);
    }
}
