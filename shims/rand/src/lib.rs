//! A minimal, API-compatible subset of the `rand` crate (0.8-era API).
//!
//! Vendored because the build environment has no crates.io access. Provides
//! exactly what this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and a deterministic
//! [`rngs::StdRng`]. The generator is an xorshift* variant seeded through
//! SplitMix64 — statistically far weaker than the real `StdRng` (ChaCha12)
//! but deterministic and more than adequate for workload generation and
//! tests.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, mirroring the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Maps a random word to a uniform float in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64-seeded xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One SplitMix64 round spreads poor seeds (0, 1, 2, ...) across
            // the state space; xorshift requires a non-zero state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            Self { state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z } }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(3usize..17);
            assert_eq!(x, b.gen_range(3usize..17));
            assert!((3..17).contains(&x));
            let f = a.gen_range(-1.0f64..1.0);
            assert_eq!(f, b.gen_range(-1.0f64..1.0));
            assert!((-1.0..1.0).contains(&f));
            let i = a.gen_range(-5i64..=5);
            assert_eq!(i, b.gen_range(-5i64..=5));
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
