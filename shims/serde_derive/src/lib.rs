//! Derive macros for the vendored `serde` shim.
//!
//! The real `serde_derive` leans on `syn`/`quote`; neither is available in
//! this network-isolated build environment, so the item is parsed directly
//! from the raw [`proc_macro::TokenStream`]. Exactly the shapes this
//! workspace derives are supported — structs with named fields and enums with
//! unit variants, both without generics — and anything else produces a
//! `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes of items we can derive for.
enum Item {
    /// A `struct` with named fields.
    Struct { name: String, fields: Vec<String> },
    /// An `enum` whose variants all carry no data.
    Enum { name: String, variants: Vec<String> },
}

/// Consumes leading outer attributes (`#[...]`, including doc comments).
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        // The bracket group of the attribute.
        tokens.next();
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility qualifier.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(i)) = tokens.peek() {
        if i.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("`{name}`: generic items are not supported by the serde shim"));
        }
        other => {
            return Err(format!(
                "`{name}`: expected a braced body (tuple/unit items unsupported), found {other:?}"
            ));
        }
    };

    match kind.as_str() {
        "struct" => parse_struct_fields(body).map(|fields| Item::Struct { name, fields }),
        "enum" => parse_enum_variants(body).map(|variants| Item::Enum { name, variants }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Extracts field names from the body of a named-field struct.
fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let field = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        // Skip the type: consume until a comma outside angle brackets. Groups
        // are atomic tokens, so only `<`/`>` nesting needs tracking.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Extracts variant names from the body of a unit-variant enum.
fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let variant = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        match tokens.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                return Err(format!(
                    "variant `{variant}` carries data ({other:?}); the serde shim only supports \
                     unit variants"
                ));
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the shim's `serde::Serialize` for a named-field struct or a
/// unit-variant enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants.iter().map(|v| format!("{name}::{v} => {v:?},")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the shim's `serde::Deserialize` for a named-field struct or a
/// unit-variant enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             value.get({f:?}).unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| e.in_field({f:?}))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if value.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"{name}: expected object, got {{value:?}}\")));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"{name}: expected string, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
