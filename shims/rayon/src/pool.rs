//! The parallel executor behind the shim's `par_*` iterators.
//!
//! The workspace denies `unsafe_code`, which rules out the classic persistent
//! worker-pool design (sending non-`'static` borrowing closures to daemon
//! threads requires lifetime transmutation). Instead the "pool" is a
//! fork-join executor: a lazily-initialized global *width* (number of worker
//! threads, from `RAYON_NUM_THREADS` or the machine's available parallelism)
//! plus `run_units`, which re-establishes that many workers per parallel
//! call with [`std::thread::scope`] — the only safe way to run closures that
//! borrow the caller's stack. Workers claim fixed-size work units off a shared
//! atomic index (a single-deque work-stealing discipline: whichever worker
//! finishes early steals the next unclaimed unit), so unequal unit costs still
//! balance across cores.
//!
//! Spawning scoped threads costs tens of microseconds; callers amortize it by
//! falling back to inline execution for tiny inputs (see `iter.rs`) and by
//! keeping units coarse (several items per claim).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Global pool width, resolved once from the environment.
static CONFIGURED_THREADS: OnceLock<usize> = OnceLock::new();

std::thread_local! {
    /// Per-thread width override installed by [`ThreadPool::install`]
    /// (0 = no override). Lets benchmarks sweep thread counts inside one
    /// process without touching the global configuration.
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Resolves the global width: `RAYON_NUM_THREADS` if set to a positive
/// integer (rayon treats 0 as "unset"), otherwise the machine's available
/// parallelism, otherwise 1.
fn configured_threads() -> usize {
    *CONFIGURED_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Number of threads a parallel call issued from this thread will use: the
/// innermost [`ThreadPool::install`] override if one is active, else the
/// global width (`RAYON_NUM_THREADS` or available parallelism).
pub fn current_num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(std::cell::Cell::get);
    if overridden >= 1 {
        overridden
    } else {
        configured_threads()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the subset the workspace
/// uses: picking an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder that inherits the global width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width; 0 means "use the global width" (rayon semantics).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the shim; the `Result` mirrors rayon's
    /// signature so call sites stay source-compatible.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads >= 1 { self.num_threads } else { configured_threads() };
        Ok(ThreadPool { threads })
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim's build cannot
/// actually fail; the type exists for API parity with rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle fixing a thread count for parallel calls made under
/// [`ThreadPool::install`]. Unlike real rayon no threads are kept alive; the
/// handle only carries the width that scoped workers are spawned with.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The width parallel calls under [`ThreadPool::install`] will use.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's width as the ambient thread count: every
    /// parallel iterator driven from inside `op` (on this thread) uses it.
    /// Overrides nest and restore on exit, including on panic.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(self.threads)));
        op()
    }
}

/// Runs `worker(k)` for every unit `k in 0..units`, distributing units across
/// up to [`current_num_threads`] scoped workers via an atomic claim index.
///
/// The calling thread participates as a worker, so a width of 1 (or a single
/// unit) degenerates to an inline loop with zero spawn cost. Worker panics
/// are caught and re-raised on the caller with their original payload once
/// the scope has joined, preserving `#[should_panic(expected = ...)]`
/// semantics; after the first panic no further units are claimed.
pub(crate) fn run_units(units: usize, worker: &(dyn Fn(usize) + Sync)) {
    let width = current_num_threads().min(units);
    if width <= 1 {
        for k in 0..units {
            worker(k);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    // Workers inherit the caller's effective width so a nested par_* call
    // inside a unit sees the same pool size as the code that launched it
    // (matching rayon, where work on pool threads uses that pool). The
    // fresh-thread TLS needs no restore: the thread ends with the scope.
    let ambient = current_num_threads();
    std::thread::scope(|scope| {
        for _ in 1..width {
            scope.spawn(|| {
                THREAD_OVERRIDE.with(|c| c.set(ambient));
                steal_loop(&next, units, worker, &first_panic);
            });
        }
        steal_loop(&next, units, worker, &first_panic);
    });
    let panicked = first_panic.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(payload) = panicked {
        resume_unwind(payload);
    }
}

/// One worker: claim the next unit off the shared index until none remain.
fn steal_loop(
    next: &AtomicUsize,
    units: usize,
    worker: &(dyn Fn(usize) + Sync),
    first_panic: &Mutex<Option<Box<dyn std::any::Any + Send>>>,
) {
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= units {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| worker(k))) {
            first_panic
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get_or_insert(payload);
            // Cancel the remaining units: in-flight claims finish, new ones stop.
            next.store(units, Ordering::Relaxed);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn width_is_at_least_one() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_overrides_and_restores() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn install_restores_after_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let outer = current_num_threads();
        let caught = catch_unwind(AssertUnwindSafe(|| pool.install(|| panic!("boom"))));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn builder_zero_means_global_width() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), configured_threads());
    }

    #[test]
    fn run_units_visits_every_unit_exactly_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            run_units(hits.len(), &|k| {
                hits[k].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_parallel_calls_inherit_the_installed_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            run_units(32, &|_| {
                // Seen from inside a worker (spawned or the caller), the
                // ambient width is still the installed one.
                assert_eq!(current_num_threads(), 3);
            });
        });
    }

    #[test]
    fn run_units_with_zero_units_is_a_no_op() {
        let touched = AtomicBool::new(false);
        run_units(0, &|_| touched.store(true, Ordering::Relaxed));
        assert!(!touched.load(Ordering::Relaxed));
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                run_units(16, &|k| {
                    if k == 7 {
                        panic!("unit seven failed");
                    }
                });
            });
        }));
        let payload = caught.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("unit seven failed"), "got: {message}");
    }
}
