//! Parallel-iterator types and adaptors over the scoped-thread pool.
//!
//! The design is a safe-Rust replacement for rayon's producer/consumer
//! machinery. Every chain bottoms out in a [`ParallelSource`]: a contiguous,
//! index-addressable collection that can split itself *by value* into ordered
//! pieces (`&[T]` / `&mut [T]` slices split with `split_at(_mut)`, `Vec` with
//! `split_off`, ranges arithmetically). Driving a chain splits the source into
//! fixed-size units of items, parks each piece in a `Mutex<Option<_>>` slot,
//! and lets pool workers claim slots off the atomic steal index
//! (`pool::run_units`); the claiming worker takes the piece and runs
//! the whole adaptor chain (a stack of [`Sink`]s ending in the terminal
//! `for_each`/`collect`) over its items. Each slot is locked exactly once, so
//! the mutexes are uncontended — they exist only to hand `Send` items (and
//! `&mut` sub-slices) to whichever thread wins the claim without `unsafe`.
//!
//! Order is tracked positionally: unit `k` always covers global item indices
//! `[k * unit_len, ...)`, which is what makes `enumerate` indices exact and
//! `collect` order-preserving no matter which worker ran which unit.
//!
//! Deliberate divergences from real rayon (documented in `shims/README.md`):
//! `zip` requires both operands to be *base sources* (slices/chunks/ranges,
//! not adaptor outputs), and there is no `join`/`split` recursion — the unit
//! grid is fixed up front at `UNITS_PER_THREAD` units per worker.

use crate::pool;
use std::sync::Mutex;

/// Below this many items a parallel call runs inline on the caller: spawning
/// scoped workers costs tens of microseconds, which only repays itself when
/// there are at least two units to overlap.
const SEQUENTIAL_CUTOFF: usize = 2;

/// Steal-units carved per worker thread. More units than workers lets the
/// atomic claim index rebalance unequal unit costs (the last worker to finish
/// steals what the slow ones have not claimed).
const UNITS_PER_THREAD: usize = 4;

/// A contiguous collection that can split itself into ordered pieces, each a
/// sequential iterator over a sub-range of items. The base of every chain.
pub trait ParallelSource: Sized {
    /// The item handed to adaptors and terminals.
    type Item: Send;
    /// Sequential iterator over one piece's items.
    type Piece: Iterator<Item = Self::Item> + Send;
    /// Total number of items.
    fn total_len(&self) -> usize;
    /// Splits into contiguous pieces of exactly `unit_len` items (the last
    /// piece may be shorter), in order. `unit_len` must be positive.
    fn split(self, unit_len: usize) -> Vec<Self::Piece>;
}

/// Consumer side of a drive: receives each piece's items tagged with the
/// piece's global start index. Implementations are shared by reference across
/// workers, hence `Sync`.
pub trait Sink<T>: Sync {
    /// Consumes one piece whose first item has global index `start`.
    fn consume(&self, start: usize, items: impl Iterator<Item = T>);
}

/// Forwarding impl so terminals can drive into a borrowed sink and read the
/// accumulated state back out afterwards (used by `collect`).
impl<T, S: Sink<T>> Sink<T> for &S {
    fn consume(&self, start: usize, items: impl Iterator<Item = T>) {
        (**self).consume(start, items);
    }
}

/// Splits `source` into steal-units and feeds them to `sink`, in parallel
/// when the pool width and item count justify spawning.
fn drive_source<S: ParallelSource>(source: S, sink: impl Sink<S::Item>) {
    let len = source.total_len();
    let threads = pool::current_num_threads();
    if threads < 2 || len < SEQUENTIAL_CUTOFF {
        for piece in source.split(len.max(1)) {
            sink.consume(0, piece);
        }
        return;
    }
    let unit_len = len.div_ceil(threads * UNITS_PER_THREAD).max(1);
    let slots: Vec<Slot<S::Piece>> =
        source.split(unit_len).into_iter().map(|p| Mutex::new(Some(p))).collect();
    pool::run_units(slots.len(), &|k| {
        let piece = take_slot(&slots[k]);
        sink.consume(k * unit_len, piece);
    });
}

/// A claim slot parking one steal-unit's piece until a worker takes it.
type Slot<P> = Mutex<Option<P>>;

/// Claims the piece parked in slot `k`; each slot is taken exactly once.
fn take_slot<P>(slot: &Slot<P>) -> P {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
        .expect("every steal-unit is claimed by exactly one worker")
}

/// A parallel iterator: a chain of adaptors over a [`ParallelSource`],
/// consumed by `for_each` or an order-preserving `collect`.
pub trait ParallelIterator: Sized {
    /// Item produced by this stage of the chain.
    type Item: Send;

    /// Total number of items the chain will produce.
    fn total_len(&self) -> usize;

    /// Runs the chain, feeding every produced item into `sink` (in parallel
    /// when worthwhile). Adaptors implement this by wrapping the sink.
    fn drive(self, sink: impl Sink<Self::Item>);

    /// Maps each item through `f` (applied on the worker that claimed the
    /// item's unit).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its global index (exact regardless of which
    /// worker processes which unit).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Zips with another *base source* position-wise, truncating to the
    /// shorter operand. Shim restriction: both operands must be base sources
    /// (slices/chunks/ranges/vecs), not adaptor outputs, so their unit grids
    /// can be aligned without rayon's unsafe producer splitting.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        Self: ParallelSource,
        B: ParallelSource,
    {
        Zip { a: self, b: other }
    }

    /// Calls `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.drive(ForEachSink { f });
    }

    /// Collects into `C`, preserving input order no matter how units were
    /// stolen across workers.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion from a parallel iterator, mirroring `FromIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the iterator's items, in their original order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        /// Accumulates `(start, items)` runs; reassembled by sorting on
        /// `start`, which restores input order positionally.
        struct CollectSink<T> {
            runs: Mutex<Vec<(usize, Vec<T>)>>,
        }
        impl<T: Send> Sink<T> for CollectSink<T> {
            fn consume(&self, start: usize, items: impl Iterator<Item = T>) {
                let run: Vec<T> = items.collect();
                self.runs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((start, run));
            }
        }
        let sink = CollectSink { runs: Mutex::new(Vec::new()) };
        let len = iter.total_len();
        iter.drive(&sink);
        let mut runs = sink.runs.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        runs.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(len);
        for (_, run) in runs {
            out.extend(run);
        }
        out
    }
}

/// Terminal sink for [`ParallelIterator::for_each`].
struct ForEachSink<F> {
    f: F,
}

impl<T, F: Fn(T) + Sync> Sink<T> for ForEachSink<F> {
    fn consume(&self, _start: usize, items: impl Iterator<Item = T>) {
        for item in items {
            (self.f)(item);
        }
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, R, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;

    fn total_len(&self) -> usize {
        self.base.total_len()
    }

    fn drive(self, sink: impl Sink<R>) {
        /// Applies the map on the claiming worker, then forwards.
        struct MapSink<K, F, R> {
            inner: K,
            f: F,
            _result: std::marker::PhantomData<fn() -> R>,
        }
        impl<T, R, K, F> Sink<T> for MapSink<K, F, R>
        where
            K: Sink<R>,
            F: Fn(T) -> R + Sync,
        {
            fn consume(&self, start: usize, items: impl Iterator<Item = T>) {
                self.inner.consume(start, items.map(&self.f));
            }
        }
        self.base.drive(MapSink { inner: sink, f: self.f, _result: std::marker::PhantomData });
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<S> {
    base: S,
}

impl<S: ParallelIterator> ParallelIterator for Enumerate<S> {
    type Item = (usize, S::Item);

    fn total_len(&self) -> usize {
        self.base.total_len()
    }

    fn drive(self, sink: impl Sink<(usize, S::Item)>) {
        /// Rebases per-piece positions onto the global index space.
        struct EnumerateSink<K> {
            inner: K,
        }
        impl<T, K: Sink<(usize, T)>> Sink<T> for EnumerateSink<K> {
            fn consume(&self, start: usize, items: impl Iterator<Item = T>) {
                self.inner
                    .consume(start, items.enumerate().map(move |(j, item)| (start + j, item)));
            }
        }
        self.base.drive(EnumerateSink { inner: sink });
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelSource,
    B: ParallelSource,
{
    type Item = (A::Item, B::Item);

    fn total_len(&self) -> usize {
        self.a.total_len().min(self.b.total_len())
    }

    fn drive(self, sink: impl Sink<(A::Item, B::Item)>) {
        // Both operands split on the same unit grid, so piece `k` of each side
        // covers the same global item range and zips positionally.
        let len = self.total_len();
        let threads = pool::current_num_threads();
        if threads < 2 || len < SEQUENTIAL_CUTOFF {
            let unit = self.a.total_len().max(self.b.total_len()).max(1);
            let (a, b) = (self.a.split(unit), self.b.split(unit));
            for (pa, pb) in a.into_iter().zip(b) {
                sink.consume(0, pa.zip(pb));
            }
            return;
        }
        let unit_len = len.div_ceil(threads * UNITS_PER_THREAD).max(1);
        let slots: Vec<Slot<(A::Piece, B::Piece)>> = self
            .a
            .split(unit_len)
            .into_iter()
            .zip(self.b.split(unit_len))
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        pool::run_units(slots.len(), &|k| {
            let (pa, pb) = take_slot(&slots[k]);
            sink.consume(k * unit_len, pa.zip(pb));
        });
    }
}

/// Splits a slice into at-most-`unit_len`-element sub-slices, mapped through
/// `piece` into sequential iterators.
fn split_slice<'a, T, P>(slice: &'a [T], unit_len: usize, piece: impl Fn(&'a [T]) -> P) -> Vec<P> {
    let mut pieces = Vec::with_capacity(slice.len().div_ceil(unit_len.max(1)).max(1));
    let mut rest = slice;
    while rest.len() > unit_len {
        let (head, tail) = rest.split_at(unit_len);
        pieces.push(piece(head));
        rest = tail;
    }
    pieces.push(piece(rest));
    pieces
}

/// `split_slice` for mutable slices (`split_at_mut` keeps the pieces
/// disjoint, which is what lets workers mutate them concurrently without
/// `unsafe`).
fn split_slice_mut<'a, T, P>(
    slice: &'a mut [T],
    unit_len: usize,
    piece: impl Fn(&'a mut [T]) -> P,
) -> Vec<P> {
    let mut pieces = Vec::with_capacity(slice.len().div_ceil(unit_len.max(1)).max(1));
    let mut rest = slice;
    while rest.len() > unit_len {
        let (head, tail) = rest.split_at_mut(unit_len);
        pieces.push(piece(head));
        rest = tail;
    }
    pieces.push(piece(rest));
    pieces
}

/// Parallel shared-slice iterator (`par_iter`).
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelSource for ParIter<'a, T> {
    type Item = &'a T;
    type Piece = std::slice::Iter<'a, T>;

    fn total_len(&self) -> usize {
        self.slice.len()
    }

    fn split(self, unit_len: usize) -> Vec<Self::Piece> {
        split_slice(self.slice, unit_len, <[T]>::iter)
    }
}

/// Parallel mutable-slice iterator (`par_iter_mut`).
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelSource for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Piece = std::slice::IterMut<'a, T>;

    fn total_len(&self) -> usize {
        self.slice.len()
    }

    fn split(self, unit_len: usize) -> Vec<Self::Piece> {
        split_slice_mut(self.slice, unit_len, <[T]>::iter_mut)
    }
}

/// Parallel iterator over `chunk_size`-element sub-slices (`par_chunks`).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelSource for ParChunks<'a, T> {
    type Item = &'a [T];
    type Piece = std::slice::Chunks<'a, T>;

    fn total_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split(self, unit_len: usize) -> Vec<Self::Piece> {
        // Units count items (= chunks), so the element boundary is a multiple
        // of the chunk size and every chunk stays whole within one piece.
        let chunk_size = self.chunk_size;
        split_slice(self.slice, unit_len.saturating_mul(chunk_size), move |s| s.chunks(chunk_size))
    }
}

/// Parallel iterator over mutable `chunk_size`-element sub-slices
/// (`par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParallelSource for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Piece = std::slice::ChunksMut<'a, T>;

    fn total_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split(self, unit_len: usize) -> Vec<Self::Piece> {
        let chunk_size = self.chunk_size;
        split_slice_mut(self.slice, unit_len.saturating_mul(chunk_size), move |s| {
            s.chunks_mut(chunk_size)
        })
    }
}

/// By-value parallel iterator over a `Vec` (`into_par_iter`).
pub struct IntoParVec<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelSource for IntoParVec<T> {
    type Item = T;
    type Piece = std::vec::IntoIter<T>;

    fn total_len(&self) -> usize {
        self.vec.len()
    }

    fn split(mut self, unit_len: usize) -> Vec<Self::Piece> {
        let mut pieces = Vec::with_capacity(self.vec.len().div_ceil(unit_len.max(1)).max(1));
        while self.vec.len() > unit_len {
            let tail = self.vec.split_off(unit_len);
            pieces.push(std::mem::replace(&mut self.vec, tail).into_iter());
        }
        pieces.push(self.vec.into_iter());
        pieces
    }
}

/// Parallel iterator over a `usize` range (`into_par_iter`).
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParallelSource for ParRange {
    type Item = usize;
    type Piece = std::ops::Range<usize>;

    fn total_len(&self) -> usize {
        self.range.len()
    }

    fn split(self, unit_len: usize) -> Vec<Self::Piece> {
        let mut pieces = Vec::with_capacity(self.range.len().div_ceil(unit_len.max(1)).max(1));
        let mut start = self.range.start;
        while self.range.end - start > unit_len {
            pieces.push(start..start + unit_len);
            start += unit_len;
        }
        pieces.push(start..self.range.end);
        pieces
    }
}

/// Every base source is itself a parallel iterator; this macro wires the
/// boilerplate (a blanket impl would collide with the adaptor impls under
/// coherence).
macro_rules! source_is_parallel_iterator {
    ($($ty:ty : [$($generics:tt)*]),+ $(,)?) => {$(
        impl<$($generics)*> ParallelIterator for $ty {
            type Item = <$ty as ParallelSource>::Item;

            fn total_len(&self) -> usize {
                ParallelSource::total_len(self)
            }

            fn drive(self, sink: impl Sink<Self::Item>) {
                drive_source(self, sink);
            }
        }
    )+};
}

source_is_parallel_iterator!(
    ParIter<'a, T>: ['a, T: Sync],
    ParIterMut<'a, T>: ['a, T: Send],
    ParChunks<'a, T>: ['a, T: Sync],
    ParChunksMut<'a, T>: ['a, T: Send],
    IntoParVec<T>: [T: Send],
    ParRange: [],
);

/// Parallel iterators over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel equivalent of `[T]::iter`.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Parallel equivalent of `[T]::chunks`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, chunk_size }
    }
}

/// Parallel iterators over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of `[T]::iter_mut`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel equivalent of `[T]::chunks_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, chunk_size }
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item the iterator yields.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = IntoParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        IntoParVec { vec: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    type Item = usize;

    fn into_par_iter(self) -> Self::Iter {
        ParRange { range: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPoolBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Runs `f` under an 8-wide pool so parallel paths execute even on
    /// single-core machines (and regardless of `RAYON_NUM_THREADS`).
    fn with_8_threads<R>(f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(8).build().unwrap().install(f)
    }

    /// Uneven per-item work so fast workers race ahead and steal units out of
    /// submission order; any ordering bug then scrambles the output.
    fn spin(i: usize) -> usize {
        let mut acc = i;
        for _ in 0..(i % 17) * 50 {
            acc = std::hint::black_box(acc.wrapping_mul(31).wrapping_add(7));
        }
        std::hint::black_box(acc);
        i
    }

    #[test]
    fn collect_preserves_input_order_under_stealing() {
        let input: Vec<usize> = (0..997).collect();
        let expected: Vec<usize> = input.iter().map(|&i| spin(i) * 2).collect();
        for _ in 0..8 {
            let got: Vec<usize> =
                with_8_threads(|| input.par_iter().map(|&i| spin(i) * 2).collect());
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn into_par_iter_vec_collect_is_ordered() {
        let got: Vec<usize> =
            with_8_threads(|| (0..500).collect::<Vec<_>>().into_par_iter().map(spin).collect());
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter_counts_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
        with_8_threads(|| {
            (0..300).into_par_iter().for_each(|i| {
                hits[spin(i)].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_iter_mut_reaches_every_element() {
        let mut data = vec![0usize; 431];
        with_8_threads(|| {
            data.par_iter_mut().enumerate().for_each(|(i, x)| *x = spin(i) + 1);
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_chunks_mut_enumerate_sees_global_chunk_indices() {
        let mut data = vec![0usize; 64 * 7 + 3]; // last chunk is partial
        with_8_threads(|| {
            data.par_chunks_mut(7).enumerate().for_each(|(c, chunk)| {
                for x in chunk {
                    *x = spin(c);
                }
            });
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i / 7);
        }
    }

    #[test]
    fn zip_pairs_chunks_positionally() {
        let src: Vec<f32> = (0..120).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 120];
        with_8_threads(|| {
            dst.par_chunks_mut(8).zip(src.par_chunks(8)).for_each(|(d, s)| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = b * 3.0;
                }
            });
        });
        for (i, &x) in dst.iter().enumerate() {
            assert_eq!(x, i as f32 * 3.0);
        }
    }

    #[test]
    fn zip_truncates_to_the_shorter_operand() {
        let a: Vec<usize> = (0..101).collect();
        let b: Vec<usize> = (0..67).collect();
        let pairs: Vec<(usize, usize)> =
            with_8_threads(|| a.par_iter().zip(b.par_iter()).map(|(&x, &y)| (x, y)).collect());
        assert_eq!(pairs.len(), 67);
        assert!(pairs.iter().enumerate().all(|(i, &(x, y))| x == i && y == i));
    }

    #[test]
    fn empty_and_single_item_inputs_run_inline() {
        let empty: Vec<usize> = Vec::new();
        let collected: Vec<usize> = with_8_threads(|| empty.par_iter().map(|&x| x).collect());
        assert!(collected.is_empty());
        let mut one = [41usize];
        with_8_threads(|| one.par_iter_mut().for_each(|x| *x += 1));
        assert_eq!(one[0], 42);
    }

    #[test]
    fn single_thread_pool_matches_parallel_results() {
        let input: Vec<usize> = (0..256).collect();
        let serial: Vec<usize> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| input.par_iter().map(|&i| i * i).collect());
        let parallel: Vec<usize> = with_8_threads(|| input.par_iter().map(|&i| i * i).collect());
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "item 13 exploded")]
    fn panics_inside_parallel_regions_keep_their_message() {
        with_8_threads(|| {
            (0..64).into_par_iter().for_each(|i| {
                assert!(i != 13, "item 13 exploded");
            });
        });
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_size_panics() {
        let data = [1, 2, 3];
        let _ = data.par_chunks(0);
    }
}
