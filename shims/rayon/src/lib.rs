//! A vendored, genuinely parallel stand-in for the subset of `rayon` this
//! workspace uses.
//!
//! Vendored because the build environment has no crates.io access. Unlike the
//! earlier sequential shim, `par_*` calls here really fan out across CPU
//! cores: work is cut into steal-units that scoped worker threads claim off
//! an atomic index ([`mod@pool`]), and the iterator adaptor chains the
//! workspace uses (`enumerate`, `zip`, `map`, `for_each`, order-preserving
//! `collect`) run on whichever worker claimed each unit ([`mod@iter`]).
//! Everything is safe Rust — the workspace denies `unsafe_code` — built on
//! [`std::thread::scope`], with inline sequential execution when the input is
//! too small to amortize a spawn or the pool width is 1.
//!
//! Knobs:
//!
//! * `RAYON_NUM_THREADS` — global pool width (default: the machine's
//!   available parallelism). `0` or unparsable values mean "default", like
//!   real rayon.
//! * [`ThreadPoolBuilder`]`::new().num_threads(n).build()?.install(|| ...)` —
//!   per-call-site width override, used by the `threads_scaling` bench and
//!   the kernel equivalence tests to sweep widths inside one process.
//!
//! Swapping in the real rayon remains a manifest-only change: the surface is
//! API-compatible for everything the workspace exercises (divergences are
//! listed in `shims/README.md`).

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// Drop-in replacement for `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}
