//! A sequential stand-in for the subset of `rayon` this workspace uses.
//!
//! Vendored because the build environment has no crates.io access. The
//! `par_*` methods return the corresponding **sequential** std iterators, so
//! every adaptor chain (`.enumerate()`, `.zip()`, `.map()`, `.for_each()`,
//! `.collect()`, ...) type-checks and produces identical results — just on
//! one thread. Swapping in the real rayon restores parallelism with no
//! source changes; until then the kernels' "parallel" variants measure the
//! partitioning logic, not actual multi-core speedups (see ROADMAP.md).

/// Drop-in replacement for `rayon::prelude`.
pub mod prelude {
    /// Parallel (here: sequential) iterators over shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Parallel (here: sequential) iterators over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// Conversion into a parallel (here: sequential) iterator by value.
    pub trait IntoParallelIterator {
        /// The iterator produced.
        type Iter: Iterator;
        /// Sequential stand-in for `rayon`'s `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Returns the number of threads the pool would use (always 1: the shim runs
/// everything sequentially).
pub fn current_num_threads() -> usize {
    1
}
