//! A minimal, API-compatible subset of [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! Vendored because the build environment has no crates.io access. Supports
//! the surface this workspace uses: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range and tuple strategies,
//! [`collection::vec`], [`prop_assert!`]/[`prop_assert_eq!`], and
//! `TestCaseError` for fallible helper functions.
//!
//! Unlike the real crate there is **no shrinking** and no persisted failure
//! seeds: cases are generated from a fixed deterministic seed, so failures
//! reproduce across runs but are not minimal.

pub mod strategy {
    //! The [`Strategy`] trait: how test-case values are generated.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of an output type from a random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy for vectors whose elements come from `element` and
    /// whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case configuration, RNG, and error type.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed assertion with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// The deterministic RNG driving strategies (the `rand` shim's `StdRng`,
    /// like the real proptest builds on `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates an RNG for one test case.
        pub fn new(seed: u64) -> Self {
            Self { inner: StdRng::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_CAFE) }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)` body
/// runs for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    0x6e656f_u64 ^ ((case as u64) << 32) ^ ::std::line!() as u64,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                // Render inputs up front: the body may consume them by value.
                let inputs = ::std::format!("{:?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = result {
                    panic!(
                        "proptest case {case}/{} failed: {err}\ninputs: {inputs}",
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Fails the current test case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?} == {:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Rejects the current case (the shim simply skips it) if the condition is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
